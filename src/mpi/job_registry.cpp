#include "mpi/job_registry.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cbmpi::mpi {

namespace {

TrafficMatrix zero_matrix(int nranks) {
  return TrafficMatrix(static_cast<std::size_t>(nranks),
                       std::vector<double>(static_cast<std::size_t>(nranks), 0.0));
}

void bump(TrafficMatrix& m, int a, int b, double w) {
  if (a == b) return;
  m[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] += w;
  m[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] += w;
}

/// Blocking neighbour exchange that is deadlock-free for any peer pattern:
/// the lower rank of each pair sends first.
template <typename Peer>
JobBody exchange_body(const JobBodyParams& params, Peer peer_of) {
  return [params, peer_of](Process& p) {
    std::vector<std::uint8_t> buf(params.message_size);
    for (int round = 0; round < params.rounds; ++round) {
      if (params.compute_ops > 0.0) p.compute(params.compute_ops);
      const int peer = peer_of(p.rank(), p.size(), round);
      if (peer != p.rank() && peer >= 0 && peer < p.size()) {
        if (p.rank() < peer) {
          p.world().send(std::span<const std::uint8_t>(buf), peer, round);
          p.world().recv(std::span<std::uint8_t>(buf), peer, round);
        } else {
          p.world().recv(std::span<std::uint8_t>(buf), peer, round);
          p.world().send(std::span<const std::uint8_t>(buf), peer, round);
        }
      }
      p.world().barrier();
    }
  };
}

/// Checkpoint-state (de)serialization for the recoverable bodies whose state
/// is one double (cg residual, bfs visited count).
std::array<std::uint8_t, 8> pack_f64(double v) {
  std::array<std::uint8_t, 8> bytes{};
  std::memcpy(bytes.data(), &v, sizeof v);
  return bytes;
}

double unpack_f64(std::span<const std::uint8_t> bytes, double fallback) {
  if (bytes.size() != sizeof(double)) return fallback;
  double v = 0.0;
  std::memcpy(&v, bytes.data(), sizeof v);
  return v;
}

/// The peer of `rank` in round `round` of the sparse-random body; pure
/// function of (nranks, round) so the traffic hint and the body agree.
int random_peer(int rank, int nranks, int round) {
  if (nranks < 2) return rank;
  // Pair ranks by a round-dependent offset: rank i talks to i xor'd partner
  // via a shifted pairing, deterministic and symmetric.
  constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  const auto shift = static_cast<int>(
      std::uint64_t{1} + mix64(static_cast<std::uint64_t>(round) * kGolden) %
                             static_cast<std::uint64_t>(nranks - 1));
  const int partner = (rank + shift) % nranks;
  // Symmetric pairing: only valid when the relation is mutual; fall back to
  // the mutual half of the shifted ring.
  if ((partner + shift) % nranks == rank) return partner;  // involution
  // Pair consecutive blocks of 2*shift: lower half talks up, upper half down.
  const int phase = (rank / shift) % 2;
  const int peer = phase == 0 ? rank + shift : rank - shift;
  return (peer >= 0 && peer < nranks) ? peer : rank;
}

}  // namespace

JobBodyRegistry& JobBodyRegistry::instance() {
  static JobBodyRegistry registry;
  return registry;
}

void JobBodyRegistry::add(const std::string& name, JobBodyInfo info) {
  CBMPI_REQUIRE(!name.empty(), "job body needs a name");
  CBMPI_REQUIRE(info.make != nullptr, "job body '", name, "' needs a factory");
  CBMPI_REQUIRE(info.traffic != nullptr, "job body '", name,
                "' needs a traffic hint");
  bodies_[name] = std::move(info);
}

bool JobBodyRegistry::contains(const std::string& name) const {
  return bodies_.count(name) > 0;
}

const JobBodyInfo& JobBodyRegistry::info(const std::string& name) const {
  const auto it = bodies_.find(name);
  if (it == bodies_.end()) {
    std::string known;
    for (const auto& [body_name, unused] : bodies_) {
      (void)unused;
      known += known.empty() ? body_name : ", " + body_name;
    }
    CBMPI_REQUIRE(false, "unknown job body '", name, "'; registered: ", known);
  }
  return it->second;
}

JobBody JobBodyRegistry::make(const std::string& name,
                              const JobBodyParams& params) const {
  return info(name).make(params);
}

TrafficMatrix JobBodyRegistry::traffic_hint(const std::string& name, int nranks,
                                            const JobBodyParams& params) const {
  CBMPI_REQUIRE(nranks > 0, "traffic hint needs at least one rank");
  auto matrix = info(name).traffic(nranks, params);
  CBMPI_REQUIRE(matrix.size() == static_cast<std::size_t>(nranks),
                "job body '", name, "' returned a malformed traffic hint");
  return matrix;
}

std::vector<std::string> JobBodyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(bodies_.size());
  for (const auto& [name, unused] : bodies_) {
    (void)unused;
    out.push_back(name);
  }
  return out;  // std::map iterates sorted
}

JobBodyRegistry::JobBodyRegistry() {
  const double size_weight = 1.0;  // hints are relative, scale is irrelevant

  add("ring", {
      [](const JobBodyParams& params) {
        // Ring shift is not a mutual pairing (peer(peer) != rank), so it
        // cannot use the blocking exchange_body: send ahead nonblocking,
        // receive from behind. Recoverable: the round's received buffer is
        // the rank's whole state ("pass the parcel"), so a checkpoint is one
        // message_size snapshot per rank and a restore re-seeds `out` with
        // the parcel held after the last committed round.
        return [params](Process& p) {
          std::vector<std::uint8_t> out(params.message_size);
          std::vector<std::uint8_t> in(params.message_size);
          if (!out.empty())
            out[0] = static_cast<std::uint8_t>(p.rank() & 0xff);
          const auto saved = p.restored_state();
          if (!saved.empty()) {
            out.assign(saved.begin(), saved.end());
            out.resize(params.message_size);
            in = out;
          }
          for (int round = p.start_round(); round < params.rounds; ++round) {
            if (params.compute_ops > 0.0) p.compute(params.compute_ops);
            if (p.size() > 1) {
              const int next = (p.rank() + 1) % p.size();
              const int prev = (p.rank() + p.size() - 1) % p.size();
              auto req = p.world().isend(std::span<const std::uint8_t>(out),
                                         next, round);
              p.world().recv(std::span<std::uint8_t>(in), prev, round);
              p.world().wait(req);
              out = in;
            }
            p.world().barrier();
            p.checkpoint(round + 1, std::span<const std::uint8_t>(in));
          }
        };
      },
      [size_weight](int nranks, const JobBodyParams& params) {
        auto m = zero_matrix(nranks);
        for (int r = 0; r < nranks; ++r)
          bump(m, r, (r + 1) % nranks,
               size_weight * static_cast<double>(params.message_size));
        return m;
      },
      "nearest-neighbour ring exchange (alternating direction)",
      /*recoverable=*/true});

  add("cg", {
      [](const JobBodyParams& params) {
        // Conjugate-gradient-shaped solver loop: each iteration is a compute
        // phase followed by a one-double allreduce (the dot-product /
        // convergence check). Recoverable: the entire iteration state is the
        // scalar residual, so checkpoints are 8 bytes per rank.
        return [params](Process& p) {
          const int iters = params.rounds * 4;
          const double ops =
              params.compute_ops > 0.0 ? params.compute_ops : 500.0;
          double residual =
              unpack_f64(p.restored_state(), /*fallback=*/1.0);
          for (int iter = p.start_round(); iter < iters; ++iter) {
            p.compute(ops);
            const double local =
                residual * (1.0 + static_cast<double>(p.rank()) /
                                      static_cast<double>(p.size()));
            double sum = 0.0;
            p.world().allreduce(std::span<const double>(&local, 1),
                                std::span<double>(&sum, 1), ReduceOp::Sum);
            residual = 0.5 * sum / static_cast<double>(p.size());
            const auto state = pack_f64(residual);
            p.checkpoint(iter + 1, std::span<const std::uint8_t>(state));
          }
        };
      },
      [](int nranks, const JobBodyParams& params) {
        // Dot-product allreduces touch every pair, weight spread uniformly;
        // volume is tiny but frequent (4 iterations per round).
        auto m = zero_matrix(nranks);
        const double w = 4.0 * static_cast<double>(params.rounds) /
                         std::max(1, nranks - 1);
        for (int a = 0; a < nranks; ++a)
          for (int b = a + 1; b < nranks; ++b) bump(m, a, b, w);
        return m;
      },
      "CG-style solver: compute + one-double allreduce per iteration "
      "(4 x rounds iterations); 8-byte checkpoint state",
      /*recoverable=*/true});

  add("bfs", {
      [](const JobBodyParams& params) {
        // Level-synchronous BFS skeleton: each level exchanges a frontier
        // with the ring neighbours, then allreduces the visited count to
        // decide termination. Recoverable: the visited count is the state.
        return [params](Process& p) {
          std::vector<std::uint8_t> frontier(params.message_size);
          double visited =
              unpack_f64(p.restored_state(), /*fallback=*/0.0);
          for (int level = p.start_round(); level < params.rounds; ++level) {
            if (params.compute_ops > 0.0) p.compute(params.compute_ops);
            if (p.size() > 1) {
              const int next = (p.rank() + 1) % p.size();
              const int prev = (p.rank() + p.size() - 1) % p.size();
              auto req = p.world().isend(
                  std::span<const std::uint8_t>(frontier), next, level);
              p.world().recv(std::span<std::uint8_t>(frontier), prev, level);
              p.world().wait(req);
            }
            const double local = static_cast<double>(level + 1);
            double total = 0.0;
            p.world().allreduce(std::span<const double>(&local, 1),
                                std::span<double>(&total, 1), ReduceOp::Sum);
            visited += total;
            const auto state = pack_f64(visited);
            p.checkpoint(level + 1, std::span<const std::uint8_t>(state));
          }
        };
      },
      [size_weight](int nranks, const JobBodyParams& params) {
        // Frontier exchange dominates (ring neighbours); the termination
        // allreduce adds a small uniform background.
        auto m = zero_matrix(nranks);
        for (int r = 0; r < nranks; ++r)
          bump(m, r, (r + 1) % nranks,
               size_weight * static_cast<double>(params.message_size));
        const double w = 8.0 / std::max(1, nranks - 1);
        for (int a = 0; a < nranks; ++a)
          for (int b = a + 1; b < nranks; ++b) bump(m, a, b, w);
        return m;
      },
      "level-synchronous BFS: frontier ring exchange + termination allreduce "
      "per level; 8-byte checkpoint state",
      /*recoverable=*/true});

  add("pairs", {
      [](const JobBodyParams& params) {
        return exchange_body(params, [](int rank, int nranks, int) {
          const int peer = rank ^ 1;
          return peer < nranks ? peer : rank;
        });
      },
      [size_weight](int nranks, const JobBodyParams& params) {
        auto m = zero_matrix(nranks);
        for (int r = 0; r + 1 < nranks; r += 2)
          bump(m, r, r + 1,
               size_weight * static_cast<double>(params.message_size));
        return m;
      },
      "even/odd partner exchange (rank ^ 1)"});

  add("shift", {
      [](const JobBodyParams& params) {
        return exchange_body(params, [](int rank, int nranks, int) {
          const int half = nranks / 2;
          if (half == 0) return rank;
          if (rank < half) return rank + half;
          return rank - half < half ? rank - half : rank;
        });
      },
      [size_weight](int nranks, const JobBodyParams& params) {
        auto m = zero_matrix(nranks);
        const int half = nranks / 2;
        for (int r = 0; r < half; ++r)
          bump(m, r, r + half,
               size_weight * static_cast<double>(params.message_size));
        return m;
      },
      "half-shift exchange (rank i <-> i + n/2): adversarial for contiguous "
      "packing"});

  add("sparse-random", {
      [](const JobBodyParams& params) {
        return exchange_body(params, random_peer);
      },
      [size_weight](int nranks, const JobBodyParams& params) {
        auto m = zero_matrix(nranks);
        for (int round = 0; round < params.rounds; ++round)
          for (int r = 0; r < nranks; ++r) {
            const int peer = random_peer(r, nranks, round);
            if (peer > r)
              bump(m, r, peer,
                   size_weight * static_cast<double>(params.message_size));
          }
        return m;
      },
      "round-varying shifted pairings (irregular sparse pattern)"});

  add("allreduce", {
      [](const JobBodyParams& params) {
        return [params](Process& p) {
          const std::size_t elems =
              std::max<std::size_t>(1, params.message_size / sizeof(double));
          std::vector<double> in(elems, 1.0), out(elems, 0.0);
          for (int round = 0; round < params.rounds; ++round) {
            if (params.compute_ops > 0.0) p.compute(params.compute_ops);
            p.world().allreduce(std::span<const double>(in),
                                std::span<double>(out), ReduceOp::Sum);
          }
        };
      },
      [](int nranks, const JobBodyParams& params) {
        // Collective traffic touches every pair; weight spread uniformly.
        auto m = zero_matrix(nranks);
        const double w = static_cast<double>(params.message_size) /
                         std::max(1, nranks - 1);
        for (int a = 0; a < nranks; ++a)
          for (int b = a + 1; b < nranks; ++b) bump(m, a, b, w);
        return m;
      },
      "allreduce over a message_size vector each round"});

  add("alltoall", {
      [](const JobBodyParams& params) {
        return [params](Process& p) {
          const std::size_t per_peer = std::max<std::size_t>(
              1, params.message_size / static_cast<std::size_t>(p.size()));
          std::vector<std::uint8_t> send(per_peer *
                                         static_cast<std::size_t>(p.size()));
          std::vector<std::uint8_t> recv(send.size());
          for (int round = 0; round < params.rounds; ++round) {
            if (params.compute_ops > 0.0) p.compute(params.compute_ops);
            p.world().alltoall(std::span<const std::uint8_t>(send),
                               std::span<std::uint8_t>(recv));
          }
        };
      },
      [](int nranks, const JobBodyParams& params) {
        auto m = zero_matrix(nranks);
        const double w =
            static_cast<double>(params.message_size) / std::max(1, nranks);
        for (int a = 0; a < nranks; ++a)
          for (int b = a + 1; b < nranks; ++b) bump(m, a, b, w);
        return m;
      },
      "personalized all-to-all each round"});

  add("compute", {
      [](const JobBodyParams& params) {
        return [params](Process& p) {
          const double ops =
              params.compute_ops > 0.0 ? params.compute_ops : 1000.0;
          for (int round = 0; round < params.rounds; ++round) p.compute(ops);
          p.world().barrier();
        };
      },
      [](int nranks, const JobBodyParams&) { return zero_matrix(nranks); },
      "embarrassingly parallel compute; placement-indifferent"});
}

}  // namespace cbmpi::mpi
