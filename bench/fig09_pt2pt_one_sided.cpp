// Figure 9: one-sided point-to-point performance between two containers on a
// single host — put latency, get latency, put bandwidth, get bandwidth (the
// paper's six panels cover intra-/inter-socket variants of these).
//
// Expected shape (paper): up to 95% latency and ~9X bandwidth improvement of
// Opt over Def; e.g. put bandwidth at 4 B: 15.73 MB/s (Def) vs 147.99 MB/s
// (Opt) vs 155.47 MB/s (native).
#include "bench_util.hpp"

#include "apps/osu/microbench.hpp"

using namespace cbmpi;
using namespace cbmpi::bench;

namespace {

double measure(const mpi::JobConfig& config, apps::osu::OneSidedOp op, Bytes size,
               bool bandwidth, int iters) {
  apps::osu::PairOptions pair;
  pair.iterations = iters;
  double value = 0.0;
  mpi::run_job(config, [&](mpi::Process& p) {
    const double v = bandwidth ? apps::osu::one_sided_bandwidth(p, op, size, pair)
                               : apps::osu::one_sided_latency(p, op, size, pair);
    if (p.rank() == 0) value = v;
  });
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const auto max_size = static_cast<Bytes>(
      opts.get_int("max-size", static_cast<std::int64_t>(256_KiB), "largest message"));
  const int iters = static_cast<int>(opts.get_int("iters", 8, "iterations per point"));
  const bool inter_socket = opts.get_flag("inter-socket", "use inter-socket placement");
  if (opts.finish("Figure 9: one-sided put/get latency and bandwidth")) return 0;

  print_banner("Figure 9", "one-sided point-to-point, 2 containers on 1 host",
               "up to 95% latency and 9X bandwidth gain; put bw at 4B: 15.73 "
               "(Def) vs 147.99 (Opt) vs 155.47 (native) MB/s");

  const auto modes =
      make_modes(1, 2, 2,
                 inter_socket ? container::SocketPolicy::DistinctSockets
                              : container::SocketPolicy::SameSocket);

  double best_lat_gain = 0.0, best_bw_ratio = 0.0;
  double putbw4_def = 0, putbw4_opt = 0, putbw4_native = 0;

  struct Panel {
    const char* name;
    apps::osu::OneSidedOp op;
    bool bandwidth;
  };
  const Panel panels[] = {
      {"put latency (us)", apps::osu::OneSidedOp::Put, false},
      {"get latency (us)", apps::osu::OneSidedOp::Get, false},
      {"put bandwidth (MB/s)", apps::osu::OneSidedOp::Put, true},
      {"get bandwidth (MB/s)", apps::osu::OneSidedOp::Get, true},
  };

  for (const auto& panel : panels) {
    std::printf("-- %s --\n", panel.name);
    Table table({"size", "Cont-Def", "Cont-Opt", "Native", "Opt vs Def"});
    for (const Bytes size : size_sweep(4, max_size)) {
      const double def = measure(modes.def, panel.op, size, panel.bandwidth, iters);
      const double opt = measure(modes.opt, panel.op, size, panel.bandwidth, iters);
      const double native =
          measure(modes.native, panel.op, size, panel.bandwidth, iters);
      std::string gain;
      if (panel.bandwidth) {
        const double ratio = opt / def;
        best_bw_ratio = std::max(best_bw_ratio, ratio);
        gain = Table::num(ratio, 1) + "x";
        if (size == 4 && panel.op == apps::osu::OneSidedOp::Put) {
          putbw4_def = def;
          putbw4_opt = opt;
          putbw4_native = native;
        }
      } else {
        const double g = percent_better(def, opt);
        best_lat_gain = std::max(best_lat_gain, g);
        gain = Table::num(g, 0) + "%";
      }
      table.add_row({format_size(size), Table::num(def, 2), Table::num(opt, 2),
                     Table::num(native, 2), gain});
    }
    table.print(std::cout);
    std::printf("\n");
  }

  std::printf("put bandwidth at 4 B: Def %.2f, Opt %.2f, Native %.2f MB/s "
              "(paper: 15.73 / 147.99 / 155.47)\n",
              putbw4_def, putbw4_opt, putbw4_native);
  std::printf("max gains: latency %.0f%% (paper: up to 95%%), bandwidth %.1fx "
              "(paper: up to 9X)\n",
              best_lat_gain, best_bw_ratio);
  print_shape_check(best_lat_gain > 50.0, "large one-sided latency gain");
  print_shape_check(best_bw_ratio > 5.0, "multi-X one-sided bandwidth gain");
  print_shape_check(putbw4_opt > putbw4_def * 5.0 && putbw4_opt < putbw4_native * 1.05,
                    "4B put bandwidth: Opt ~9x Def and close to native");
  return 0;
}
