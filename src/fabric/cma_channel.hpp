// CMA channel: single-copy transfers via simulated process_vm_readv.
//
// Always a rendezvous protocol: the receiver matches the RTS and pulls the
// payload straight out of the sender's address space with one copy. The
// syscall's fixed cost is why CMA loses to SHM below ~8 KiB (Fig. 3) — and
// why SMP_EAGER_SIZE = 8 K is the optimal switch point (Fig. 7a).
//
// Requires a shared PID namespace; the data move goes through osl::cma which
// enforces that, so a mis-selected CMA transfer surfaces as EPERM exactly
// like the real syscall would.
#pragma once

#include <span>

#include "fabric/channel_costs.hpp"
#include "fabric/message.hpp"
#include "osl/cma.hpp"
#include "topo/calibration.hpp"

namespace cbmpi::fabric {

class CmaChannel {
 public:
  explicit CmaChannel(const topo::MachineProfile& profile) : profile_(&profile) {}

  /// Completion times for a transfer of `size` bytes given when the RTS was
  /// sent and when the receiver matched it. Control messages (RTS/FIN) ride
  /// the shared-memory queue, so their latency is SHM-like.
  RndvTimes rndv_times(Bytes size, bool same_socket, Micros rts_sent_at,
                       Micros match_at) const;

  OneSidedCosts one_sided_costs(Bytes size, bool same_socket) const;

  /// Performs the actual single-copy pull on behalf of the receiver.
  osl::cma::Result pull(const osl::SimProcess& receiver, const RndvState& rndv,
                        std::span<std::byte> dst) const;

  /// Single-copy cost (syscall + copy), exposed for calibration tests.
  Micros transfer_cost(Bytes size, bool same_socket) const;

 private:
  Micros control_latency(bool same_socket) const;

  const topo::MachineProfile* profile_;
};

}  // namespace cbmpi::fabric
