#include "fabric/reg_cache.hpp"

#include "common/error.hpp"

namespace cbmpi::fabric {

RegistrationCache::RegistrationCache(std::vector<Bytes> per_rank_capacity) {
  shards_.resize(per_rank_capacity.size());
  for (std::size_t r = 0; r < shards_.size(); ++r)
    shards_[r].capacity = per_rank_capacity[r];
}

void RegistrationCache::evict_lru(Shard& shard, Lookup& out) {
  CBMPI_REQUIRE(!shard.lru.empty(), "reg cache eviction from an empty shard");
  const Entry victim = shard.lru.back();
  shard.lru.pop_back();
  shard.index.erase(victim.id);
  shard.pinned -= victim.bytes;
  ++shard.evictions;
  ++out.evictions;
  out.evicted_bytes += victim.bytes;
}

RegistrationCache::Lookup RegistrationCache::lookup(int rank,
                                                    std::uint64_t buffer_id,
                                                    Bytes bytes) {
  auto& shard = shards_.at(static_cast<std::size_t>(rank));
  Lookup out;

  if (const auto it = shard.index.find(buffer_id); it != shard.index.end()) {
    if (it->second->bytes >= bytes) {
      // The pinned region covers the request: pure hit, refresh recency.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      ++shard.hits;
      out.hit = true;
      return out;
    }
    // The buffer grew past its pinned region: the old registration is
    // useless — deregister it and fall through to the miss path.
    shard.pinned -= it->second->bytes;
    out.evicted_bytes += it->second->bytes;
    ++out.evictions;
    ++shard.evictions;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }

  ++shard.misses;
  out.registered = bytes;
  shard.registered += bytes;
  if (bytes > shard.capacity) {
    // Larger than the whole budget: registered for this transfer only and
    // unpinned right after — the real stacks' uncachable path.
    out.cached = false;
    return out;
  }
  while (shard.pinned + bytes > shard.capacity) evict_lru(shard, out);
  shard.lru.push_front(Entry{buffer_id, bytes});
  shard.index.emplace(buffer_id, shard.lru.begin());
  shard.pinned += bytes;
  if (shard.pinned > shard.peak) shard.peak = shard.pinned;
  return out;
}

Bytes RegistrationCache::pinned(int rank) const {
  return shards_.at(static_cast<std::size_t>(rank)).pinned;
}

Bytes RegistrationCache::capacity(int rank) const {
  return shards_.at(static_cast<std::size_t>(rank)).capacity;
}

std::vector<std::vector<RegCacheEntry>> RegistrationCache::snapshot_entries()
    const {
  std::vector<std::vector<RegCacheEntry>> out(shards_.size());
  for (std::size_t r = 0; r < shards_.size(); ++r) {
    out[r].reserve(shards_[r].lru.size());
    for (const Entry& entry : shards_[r].lru)
      out[r].push_back(RegCacheEntry{entry.id, entry.bytes});
  }
  return out;
}

void RegistrationCache::warm(int rank, const std::vector<RegCacheEntry>& entries) {
  auto& shard = shards_.at(static_cast<std::size_t>(rank));
  CBMPI_REQUIRE(shard.lru.empty(), "reg cache warmed after first use");
  for (const RegCacheEntry& entry : entries) {
    if (shard.pinned + entry.bytes > shard.capacity) break;
    shard.lru.push_back(Entry{entry.id, entry.bytes});
    shard.index.emplace(entry.id, std::prev(shard.lru.end()));
    shard.pinned += entry.bytes;
  }
  if (shard.pinned > shard.peak) shard.peak = shard.pinned;
}

RegCacheStats RegistrationCache::stats() const {
  RegCacheStats stats;
  for (const auto& shard : shards_) {
    stats.capacity_bytes += shard.capacity;
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.evictions += shard.evictions;
    stats.pinned_bytes += shard.pinned;
    stats.peak_pinned_bytes += shard.peak;
    stats.registered_bytes += shard.registered;
  }
  return stats;
}

}  // namespace cbmpi::fabric
