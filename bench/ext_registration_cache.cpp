// Extension experiment: pin-down (memory-registration) cache and pipelined
// rendezvous in the HCA path (src/fabric/reg_cache, DESIGN.md §15).
//
// The paper's cost model treats RDMA buffers as free to use; real IB stacks
// pay a syscall-heavy, size-proportional registration on every cold buffer
// and amortize it with an LRU pin-down cache. This bench sweeps message size
// x cache capacity x reuse pattern and checks the shapes the model must
// produce:
//
//   1. reuse — a warm cache beats cold registration at every rendezvous
//      size, and turning the model off entirely is the fastest of all
//      (no registration charges anywhere);
//   2. pipelining — chunked rendezvous (register chunk k+1 while chunk k
//      flies) beats one serial full-message registration on a cold buffer;
//   3. capacity — a working set that fits hits exactly 2*(rounds-1)*buffers
//      times, one that cyclically overflows the budget thrashes to zero
//      hits and runs slower.
//
// Everything is virtual-time deterministic: the same seed writes a
// byte-identical --json document.
#include "bench_util.hpp"

using namespace cbmpi;
using namespace cbmpi::bench;

namespace {

enum class RegMode { Off, Cold, Warm };

/// `iters` rendezvous sends of `msg` bytes reusing one buffer per endpoint,
/// across one host pair. Cold = model on with a zero-byte budget (nothing
/// ever caches), warm = model on with the default budget.
mpi::JobResult reuse_run(Bytes msg, int iters, RegMode mode, Bytes chunk,
                         std::uint64_t seed) {
  mpi::JobConfig config;
  config.deployment = container::DeploymentSpec::native_hosts(2, 1);
  config.seed = seed;
  config.tuning.reg_model = mode != RegMode::Off;
  config.tuning.reg_cache_bytes = mode == RegMode::Cold ? 0 : 64_MiB;
  config.tuning.rndv_chunk = chunk;
  return mpi::run_job(config, [&](mpi::Process& p) {
    std::vector<std::uint8_t> buf(msg);
    for (int i = 0; i < iters; ++i) {
      if (p.rank() == 0)
        p.world().send(std::span<const std::uint8_t>(buf), 1);
      else
        p.world().recv(std::span<std::uint8_t>(buf), 0);
    }
  });
}

/// `rounds` cyclic passes over `buffers` distinct `size`-byte buffers under
/// a `capacity`-byte pinned budget per rank.
mpi::JobResult working_set_run(int buffers, int rounds, Bytes size,
                               Bytes capacity, std::uint64_t seed) {
  mpi::JobConfig config;
  config.deployment = container::DeploymentSpec::native_hosts(2, 1);
  config.seed = seed;
  config.tuning.reg_model = true;
  config.tuning.reg_cache_bytes = capacity;
  return mpi::run_job(config, [&](mpi::Process& p) {
    std::vector<std::vector<std::uint8_t>> bufs(
        static_cast<std::size_t>(buffers), std::vector<std::uint8_t>(size));
    for (int r = 0; r < rounds; ++r)
      for (auto& buf : bufs) {
        if (p.rank() == 0)
          p.world().send(std::span<const std::uint8_t>(buf), 1);
        else
          p.world().recv(std::span<std::uint8_t>(buf), 0);
      }
  });
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int iters = static_cast<int>(
      opts.get_int("iters", 8, "sends per (size, mode) reuse point"));
  const std::uint64_t seed = declare_seed(opts);
  const std::string json_path = declare_json(opts);
  if (opts.finish("Extension: pin-down cache + pipelined rendezvous "
                  "(src/fabric/reg_cache)"))
    return 0;

  print_banner("Extension", "memory-registration cache in the HCA path",
               "RDMA buffer registration dominates cold large-message "
               "latency; the LRU pin-down cache amortizes it across reuse "
               "and chunked rendezvous hides it behind the wire");

  JsonRows json("ext_registration_cache",
                "msg size x cache capacity x reuse pattern", seed);

  // --- 1. reuse: off vs cold vs warm ----------------------------------------
  std::printf("%d rendezvous sends reusing one buffer (virtual us):\n", iters);
  Table reuse_table({"size", "model off", "cold (no cache)", "warm (64M)",
                     "warm/cold"});
  bool warm_beats_cold = true, off_is_floor = true;
  for (const Bytes msg : {64_KiB, 256_KiB, 1_MiB, 4_MiB}) {
    const Micros off = reuse_run(msg, iters, RegMode::Off, 512_KiB, seed).job_time;
    const Micros cold = reuse_run(msg, iters, RegMode::Cold, 512_KiB, seed).job_time;
    const Micros warm = reuse_run(msg, iters, RegMode::Warm, 512_KiB, seed).job_time;
    warm_beats_cold = warm_beats_cold && warm < cold;
    off_is_floor = off_is_floor && off <= warm;
    reuse_table.add_row({format_size(msg), Table::num(off, 2),
                         Table::num(cold, 2), Table::num(warm, 2),
                         Table::num(warm / cold, 3)});
    const std::string prefix = format_size(msg) + " ";
    json.add(prefix + "off", msg, off, 0.0);
    json.add(prefix + "cold", msg, cold, 0.0);
    json.add(prefix + "warm", msg, warm, 0.0);
  }
  reuse_table.print(std::cout);
  print_shape_check(warm_beats_cold,
                    "cache hits beat cold registration at every size");
  print_shape_check(off_is_floor,
                    "--reg-cache=off (no registration charges) is the floor");

  // --- 2. pipelined vs serial registration ----------------------------------
  std::printf("\none cold 4 MiB rendezvous, chunked vs serial registration:\n");
  const Micros pipelined =
      reuse_run(4_MiB, 1, RegMode::Cold, 256_KiB, seed).job_time;
  const Micros serial = reuse_run(4_MiB, 1, RegMode::Cold, 1_GiB, seed).job_time;
  Table pipe_table({"chunk", "virtual us"});
  pipe_table.add_row({"256K (pipelined)", Table::num(pipelined, 2)});
  pipe_table.add_row({">= message (serial)", Table::num(serial, 2)});
  pipe_table.print(std::cout);
  json.add("pipelined_256K", 4_MiB, pipelined, 0.0);
  json.add("serial", 4_MiB, serial, 0.0);
  print_shape_check(pipelined < serial,
                    "chunked registration pipeline beats serial reg+send");

  // --- 3. capacity x working set --------------------------------------------
  const int rounds = 4;
  std::printf("\n%d cyclic rounds over N 128 KiB buffers, 512 KiB budget:\n",
              rounds);
  Table cap_table({"buffers", "working set", "hits", "misses", "virtual us"});
  const auto fits = working_set_run(2, rounds, 128_KiB, 512_KiB, seed);
  const auto thrash = working_set_run(8, rounds, 128_KiB, 512_KiB, seed);
  cap_table.add_row({"2", "256K (fits)",
                     std::to_string(fits.reg_cache.hits),
                     std::to_string(fits.reg_cache.misses),
                     Table::num(fits.job_time, 2)});
  cap_table.add_row({"8", "1M (thrashes)",
                     std::to_string(thrash.reg_cache.hits),
                     std::to_string(thrash.reg_cache.misses),
                     Table::num(thrash.job_time, 2)});
  cap_table.print(std::cout);
  json.add("fits", 128_KiB, fits.job_time,
           static_cast<double>(fits.reg_cache.hits));
  json.add("thrash", 128_KiB, thrash.job_time,
           static_cast<double>(thrash.reg_cache.hits));
  // Both endpoints miss each buffer once, then hit every later round.
  const std::uint64_t expect_fits = 2u * (rounds - 1) * 2u;
  print_shape_check(fits.reg_cache.hits == expect_fits &&
                        thrash.reg_cache.hits == 0,
                    "fitting working set hits exactly 2*(R-1)*W, cyclic "
                    "overflow thrashes to zero hits");
  print_shape_check(fits.job_time < thrash.job_time,
                    "thrashing working set pays for it in virtual time");

  // --- determinism ----------------------------------------------------------
  const auto again = reuse_run(1_MiB, iters, RegMode::Warm, 512_KiB, seed);
  const Micros warm_1m = reuse_run(1_MiB, iters, RegMode::Warm, 512_KiB, seed).job_time;
  print_shape_check(again.job_time == warm_1m,
                    "cache-enabled runs bit-identical across reruns");
  // The reg knobs must be inert while the model is off.
  mpi::JobConfig plain;
  plain.deployment = container::DeploymentSpec::native_hosts(2, 1);
  plain.seed = seed;
  mpi::JobConfig inert = plain;
  inert.tuning.reg_cache_bytes = 123;
  inert.tuning.rndv_chunk = 777;
  inert.tuning.reg_cost_scale = 9.0;
  const auto body = [](mpi::Process& p) {
    std::vector<std::uint8_t> buf(1_MiB);
    if (p.rank() == 0)
      p.world().send(std::span<const std::uint8_t>(buf), 1);
    else
      p.world().recv(std::span<std::uint8_t>(buf), 0);
  };
  print_shape_check(
      mpi::run_job(plain, body).job_time == mpi::run_job(inert, body).job_time,
      "--reg-cache=off reproduces the no-model numbers bit-identically");

  json.write(json_path);
  return 0;
}
