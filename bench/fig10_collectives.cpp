// Figure 10: collective performance (Bcast, Allreduce, Allgather, Alltoall)
// with containers spread evenly over the cluster — the paper uses 256
// processes in 64 containers on 16 hosts (4 containers x 4 procs per host).
// Defaults here are scaled to 64 processes (16 hosts x 4) for wall-clock
// reasons; use --procs-per-host 16 to reproduce the full 256.
//
// Expected shape (paper): Opt improves on Def by up to 59% (bcast), 64%
// (allreduce), 86% (allgather), 28% (alltoall), and stays within ~9% of
// native. Alltoall benefits least (no hierarchical variant, only channel
// gains).
#include "bench_util.hpp"

#include "apps/osu/microbench.hpp"

using namespace cbmpi;
using namespace cbmpi::bench;

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int hosts = static_cast<int>(opts.get_int("hosts", 16, "cluster hosts"));
  const int containers = static_cast<int>(
      opts.get_int("containers-per-host", 4, "containers per host"));
  const int procs = static_cast<int>(
      opts.get_int("procs-per-host", 4, "processes per host (paper: 16)"));
  const auto max_size = static_cast<Bytes>(
      opts.get_int("max-size", static_cast<std::int64_t>(16_KiB), "largest message"));
  const int iters = static_cast<int>(opts.get_int("iters", 3, "iterations per point"));
  const bool flat = opts.get_flag("flat", "disable two-level collectives (ablation)");
  if (opts.finish("Figure 10: collective latency, Def vs Opt vs Native")) return 0;

  print_banner("Figure 10", "collectives across containers on the cluster",
               "Opt gains up to 59%/64%/86%/28% for bcast/allreduce/allgather/"
               "alltoall; <=9% overhead vs native");

  auto modes = make_modes(hosts, containers, procs);
  if (flat) {
    modes.def.tuning.two_level_collectives = false;
    modes.opt.tuning.two_level_collectives = false;
    modes.native.tuning.two_level_collectives = false;
  }

  auto measure = [&](const mpi::JobConfig& config, apps::osu::Collective coll,
                     Bytes size) {
    apps::osu::PairOptions pair;
    pair.iterations = iters;
    pair.warmup = 1;
    double value = 0.0;
    mpi::run_job(config, [&](mpi::Process& p) {
      const double v = apps::osu::collective_latency(p, coll, size, pair);
      if (p.rank() == 0) value = v;
    });
    return value;
  };

  std::map<apps::osu::Collective, double> best_gain;
  std::map<apps::osu::Collective, double> worst_overhead;

  for (const auto coll :
       {apps::osu::Collective::Bcast, apps::osu::Collective::Allreduce,
        apps::osu::Collective::Allgather, apps::osu::Collective::Alltoall}) {
    std::printf("-- %s latency (us), %d ranks --\n", apps::osu::to_string(coll),
                hosts * procs);
    Table table({"size", "Cont-Def", "Cont-Opt", "Native", "Opt vs Def",
                 "Opt vs Native"});
    for (const Bytes size : size_sweep(4, max_size)) {
      const double def = measure(modes.def, coll, size);
      const double opt = measure(modes.opt, coll, size);
      const double native = measure(modes.native, coll, size);
      const double gain = percent_better(def, opt);
      const double overhead = (opt - native) / native * 100.0;
      best_gain[coll] = std::max(best_gain[coll], gain);
      worst_overhead[coll] = std::max(worst_overhead[coll], overhead);
      table.add_row({format_size(size), Table::num(def, 1), Table::num(opt, 1),
                     Table::num(native, 1), Table::num(gain, 0) + "%",
                     Table::num(overhead, 0) + "%"});
    }
    table.print(std::cout);
    std::printf("\n");
  }

  std::printf("max Opt-vs-Def gains: bcast %.0f%%, allreduce %.0f%%, allgather "
              "%.0f%%, alltoall %.0f%% (paper: 59/64/86/28)\n",
              best_gain[apps::osu::Collective::Bcast],
              best_gain[apps::osu::Collective::Allreduce],
              best_gain[apps::osu::Collective::Allgather],
              best_gain[apps::osu::Collective::Alltoall]);
  for (const auto coll :
       {apps::osu::Collective::Bcast, apps::osu::Collective::Allreduce,
        apps::osu::Collective::Allgather, apps::osu::Collective::Alltoall}) {
    // Alltoall gains only through channel selection (no hierarchical
    // variant), and most of its traffic is inter-host — a small but positive
    // gain is the expected shape.
    const double floor = coll == apps::osu::Collective::Alltoall ? 4.0 : 15.0;
    print_shape_check(best_gain[coll] > floor,
                      std::string(apps::osu::to_string(coll)) +
                          " shows a clear Opt-over-Def gain");
  }
  print_shape_check(best_gain[apps::osu::Collective::Alltoall] <=
                        best_gain[apps::osu::Collective::Allgather],
                    "alltoall benefits least (matches paper ordering)");
  return 0;
}
