file(REMOVE_RECURSE
  "CMakeFiles/fig01_graph500_default.dir/fig01_graph500_default.cpp.o"
  "CMakeFiles/fig01_graph500_default.dir/fig01_graph500_default.cpp.o.d"
  "fig01_graph500_default"
  "fig01_graph500_default.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_graph500_default.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
