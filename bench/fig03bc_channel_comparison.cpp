// Figure 3(b)/(c): point-to-point latency and bandwidth of the three
// communication channels (SHM / CMA / HCA), forced per run, between two
// processes on one host.
//
// Expected shape (paper): SHM best at small sizes (up to ~77% lower latency
// and ~111% higher bandwidth than HCA); CMA overtakes SHM above ~8K; HCA
// (loopback) worst throughout the intra-host range.
#include "bench_util.hpp"

#include "apps/osu/microbench.hpp"

using namespace cbmpi;
using namespace cbmpi::bench;

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const auto max_size = static_cast<Bytes>(
      opts.get_int("max-size", static_cast<std::int64_t>(1_MiB), "largest message"));
  const int iters = static_cast<int>(opts.get_int("iters", 10, "iterations per size"));
  if (opts.finish("Figure 3b/3c: forced-channel latency and bandwidth")) return 0;

  print_banner("Figure 3(b)/(c)", "SHM vs CMA vs HCA channel comparison",
               "SHM beats HCA by up to 77% (latency) / 111% (bandwidth); CMA "
               "overtakes SHM above 8K");

  apps::osu::PairOptions pair;
  pair.iterations = iters;

  auto measure = [&](fabric::ChannelKind channel, Bytes size, bool bandwidth) {
    mpi::JobConfig config;
    // Native 2-proc job on one host; the forced channel overrides selection.
    config.deployment = container::DeploymentSpec::native_hosts(1, 2);
    config.forced_channel = channel;
    double value = 0.0;
    mpi::run_job(config, [&](mpi::Process& p) {
      const double v = bandwidth ? apps::osu::pt2pt_bandwidth(p, size, pair)
                                 : apps::osu::pt2pt_latency(p, size, pair);
      if (p.rank() == 0) value = v;
    });
    return value;
  };

  const auto sizes = size_sweep(1, max_size);

  std::printf("-- (b) latency (us) --\n");
  Table lat({"size", "SHM", "CMA", "HCA"});
  double shm_lat_1k = 0, hca_lat_1k = 0, shm8k = 0, cma8k = 0, shm64k = 0, cma64k = 0;
  for (const Bytes size : sizes) {
    const double shm = measure(fabric::ChannelKind::Shm, size, false);
    const double cma = measure(fabric::ChannelKind::Cma, size, false);
    const double hca = measure(fabric::ChannelKind::Hca, size, false);
    if (size == 1_KiB) {
      shm_lat_1k = shm;
      hca_lat_1k = hca;
    }
    if (size == 4_KiB) {
      shm8k = shm;
      cma8k = cma;
    }
    if (size == 64_KiB) {
      shm64k = shm;
      cma64k = cma;
    }
    lat.add_row({format_size(size), Table::num(shm, 2), Table::num(cma, 2),
                 Table::num(hca, 2)});
  }
  lat.print(std::cout);

  std::printf("\n-- (c) bandwidth (MB/s) --\n");
  Table bw({"size", "SHM", "CMA", "HCA"});
  double best_gain = 0.0;
  for (const Bytes size : sizes) {
    const double shm = measure(fabric::ChannelKind::Shm, size, true);
    const double cma = measure(fabric::ChannelKind::Cma, size, true);
    const double hca = measure(fabric::ChannelKind::Hca, size, true);
    best_gain = std::max(best_gain, (shm - hca) / hca * 100.0);
    bw.add_row({format_size(size), Table::num(shm, 1), Table::num(cma, 1),
                Table::num(hca, 1)});
  }
  bw.print(std::cout);

  std::printf("\nSHM over HCA: latency %.0f%% better at 1K, bandwidth up to "
              "%.0f%% better\n",
              percent_better(hca_lat_1k, shm_lat_1k), best_gain);
  print_shape_check(shm_lat_1k < hca_lat_1k * 0.5,
                    "SHM latency far below HCA loopback");
  print_shape_check(shm8k < cma8k, "SHM still wins below 8K");
  print_shape_check(cma64k < shm64k, "CMA wins above 8K");
  print_shape_check(best_gain > 60.0, "SHM bandwidth advantage over HCA is large");
  return 0;
}
