// Quickstart: the smallest complete cbmpi program.
//
// Launches an 8-rank MPI job in two containers on one simulated host, runs
// point-to-point and collective traffic under the locality-aware runtime,
// and prints what happened — including which channels the traffic used.
//
//   $ ./quickstart
#include <cstdio>
#include <numeric>

#include "mpi/runtime.hpp"

int main() {
  using namespace cbmpi;

  // 1. Describe the deployment: 2 containers x 4 processes on one host,
  //    Docker-style defaults (--privileged --ipc=host --pid=host).
  mpi::JobConfig config;
  config.deployment = container::DeploymentSpec::containers(
      /*hosts=*/1, /*containers_per_host=*/2, /*procs_per_host=*/8);

  // 2. Pick the runtime: ContainerAware is the paper's proposed design;
  //    HostnameBased reproduces default MVAPICH2 behaviour.
  config.policy = fabric::LocalityPolicy::ContainerAware;

  // 3. Run the job. The lambda is the "MPI program"; every rank executes it
  //    on its own thread with its own virtual clock.
  const auto result = mpi::run_job(config, [](mpi::Process& p) {
    auto& world = p.world();

    // Point-to-point ring: pass a token once around.
    int token = p.rank() == 0 ? 42 : 0;
    const int next = (p.rank() + 1) % p.size();
    const int prev = (p.rank() + p.size() - 1) % p.size();
    if (p.rank() == 0) {
      world.send_value(token, next);
      token = world.recv_value<int>(prev);
    } else {
      token = world.recv_value<int>(prev);
      world.send_value(token, next);
    }

    // A compute phase (virtual time, identical on every rank).
    p.compute(10'000.0);

    // Collectives.
    const auto sum = world.allreduce_value<std::int64_t>(p.rank(), mpi::ReduceOp::Sum);
    std::vector<int> everyone(static_cast<std::size_t>(p.size()));
    const int mine = p.rank() * p.rank();
    world.allgather(std::span<const int>(&mine, 1), std::span<int>(everyone));

    if (p.rank() == 0) {
      std::printf("ring token arrived: %d\n", token);
      std::printf("allreduce sum of ranks: %lld\n", static_cast<long long>(sum));
      std::printf("allgather of rank^2:");
      for (const int v : everyone) std::printf(" %d", v);
      std::printf("\n");
      std::printf("virtual time so far: %.2f us\n", p.now());
    }
  });

  // 4. Inspect the job result: virtual makespan and channel usage.
  std::printf("\njob completed in %.2f us of virtual time\n", result.job_time);
  std::printf("channel transfer operations: SHM=%llu CMA=%llu HCA=%llu\n",
              static_cast<unsigned long long>(
                  result.profile.total.channel_ops(fabric::ChannelKind::Shm)),
              static_cast<unsigned long long>(
                  result.profile.total.channel_ops(fabric::ChannelKind::Cma)),
              static_cast<unsigned long long>(
                  result.profile.total.channel_ops(fabric::ChannelKind::Hca)));
  std::printf("(all intra-host: the locality detector kept everything off the "
              "HCA loopback)\n");
  return 0;
}
