// Figure 3(a): Graph 500 BFS execution-time breakdown (communication vs
// computation) per deployment scenario, via the mpiP-style profiler.
//
// Expected shape (paper): communication fraction ~77% on native and
// 1-container, jumping to ~91% at 2 containers and ~93% at 4; computation
// time roughly constant (~17 ms) across scenarios.
#include "bench_util.hpp"

#include "apps/graph500/bfs.hpp"
#include "prof/profile.hpp"

using namespace cbmpi;
using namespace cbmpi::bench;

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int scale = static_cast<int>(opts.get_int("scale", 13, "Graph500 scale (paper: 20)"));
  const int procs = static_cast<int>(opts.get_int("procs", 16, "MPI processes"));
  if (opts.finish("Figure 3a: BFS communication/computation breakdown")) return 0;

  print_banner("Figure 3(a)", "BFS time breakdown, default MPI",
               "comm fraction 77% native -> 91% (2 cont) -> 93% (4 cont); "
               "computation constant across scenarios");

  const apps::graph500::EdgeListParams params{scale, 16, 1};

  struct Row {
    std::string label;
    double comm_ms, comp_ms, fraction;
  };
  std::vector<Row> rows;

  for (int containers : {0, 1, 2, 4}) {
    mpi::JobConfig config;
    config.deployment = containers == 0
                            ? container::DeploymentSpec::native_hosts(1, procs)
                            : container::DeploymentSpec::containers(1, containers, procs);
    config.policy = fabric::LocalityPolicy::HostnameBased;
    const auto result = mpi::run_job(config, [&](mpi::Process& p) {
      const auto graph = apps::graph500::build_graph(p, params);
      apps::graph500::run_bfs(p, graph, 0);
    });
    rows.push_back({config.deployment.label(),
                    to_millis(result.profile.total.comm_time()),
                    to_millis(result.profile.total.compute_time()),
                    result.profile.comm_fraction()});
  }

  Table table({"scenario", "comm (ms, sum over ranks)", "comp (ms)", "comm %"});
  for (const auto& row : rows)
    table.add_row({row.label, Table::num(row.comm_ms, 2), Table::num(row.comp_ms, 2),
                   Table::num(row.fraction * 100.0, 1)});
  table.print(std::cout);

  print_shape_check(std::abs(rows[0].comp_ms - rows[3].comp_ms) <
                        rows[0].comp_ms * 0.05,
                    "computation time constant across scenarios");
  print_shape_check(rows[2].fraction > rows[1].fraction + 0.03,
                    "comm fraction jumps at 2 containers");
  print_shape_check(rows[3].fraction >= rows[2].fraction,
                    "comm fraction grows further at 4 containers");
  return 0;
}
