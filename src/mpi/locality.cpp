#include "mpi/locality.hpp"

#include "common/error.hpp"

namespace cbmpi::mpi {

ContainerLocalityDetector::ContainerLocalityDetector(std::string job_tag, int nranks)
    : segment_name_("locality_" + std::move(job_tag)), nranks_(nranks) {
  CBMPI_REQUIRE(nranks > 0, "detector needs at least one rank");
}

std::shared_ptr<osl::ShmSegment> ContainerLocalityDetector::list_for(
    const osl::SimProcess& proc) const {
  auto& shm = proc.host().shm();
  const auto ipc_ns = proc.namespaces().get(osl::NamespaceType::Ipc);
  return shm.open(ipc_ns, segment_name_, static_cast<Bytes>(nranks_));
}

void ContainerLocalityDetector::announce(const osl::SimProcess& proc, int rank) {
  CBMPI_REQUIRE(rank >= 0 && rank < nranks_, "rank out of range: ", rank);
  list_for(proc)->store_byte(static_cast<Bytes>(rank), 1);
}

std::vector<std::uint8_t> ContainerLocalityDetector::co_resident_row(
    const osl::SimProcess& proc) const {
  auto list = list_for(proc);
  std::vector<std::uint8_t> row(static_cast<std::size_t>(nranks_));
  for (int j = 0; j < nranks_; ++j)
    row[static_cast<std::size_t>(j)] = list->load_byte(static_cast<Bytes>(j));
  return row;
}

std::vector<int> ContainerLocalityDetector::local_ranks(
    const osl::SimProcess& proc) const {
  const auto row = co_resident_row(proc);
  std::vector<int> ranks;
  for (int j = 0; j < nranks_; ++j)
    if (row[static_cast<std::size_t>(j)] != 0) ranks.push_back(j);
  return ranks;
}

std::vector<std::uint8_t> ContainerLocalityDetector::hostname_fallback_row(
    const osl::SimProcess& proc,
    const std::vector<const osl::SimProcess*>& all) const {
  CBMPI_REQUIRE(static_cast<int>(all.size()) == nranks_,
                "fallback row needs one process per rank");
  const std::string hostname = proc.hostname();
  std::vector<std::uint8_t> row(static_cast<std::size_t>(nranks_));
  for (int j = 0; j < nranks_; ++j)
    row[static_cast<std::size_t>(j)] =
        all[static_cast<std::size_t>(j)]->hostname() == hostname ? 1 : 0;
  return row;
}

Micros ContainerLocalityDetector::detection_cost() const {
  // One byte store (~one cacheline write) + a linear scan of nranks bytes at
  // cached-read speed (~16 B/ns) + segment open bookkeeping.
  constexpr Micros kStore = 0.01;
  constexpr Micros kOpen = 0.5;
  const Micros scan = static_cast<double>(nranks_) / 16000.0;
  return kStore + kOpen + scan;
}

Micros ContainerLocalityDetector::fallback_cost() const {
  // Failed open + one retried open (each ~= the open bookkeeping cost) plus a
  // string compare per rank (~4x the byte-scan cost).
  constexpr Micros kFailedOpen = 0.5;
  constexpr Micros kRetriedOpen = 0.5;
  const Micros compares = static_cast<double>(nranks_) / 4000.0;
  return kFailedOpen + kRetriedOpen + compares;
}

}  // namespace cbmpi::mpi
