// Graph 500 BFS result validation (the spec's soundness checks, distributed):
//   1. the root's parent is itself, at level 0;
//   2. every reached vertex has a reached parent whose level is exactly one
//      less (checked with a distributed level-query exchange);
//   3. every tree edge (parent, v) exists in the graph (checked against the
//      local adjacency of v — adjacency is stored symmetrically);
//   4. reached-vertex count matches the BFS's own counter.
#pragma once

#include "apps/graph500/bfs.hpp"

namespace cbmpi::apps::graph500 {

struct ValidationReport {
  bool ok = true;
  std::uint64_t bad_root = 0;
  std::uint64_t bad_levels = 0;        ///< parent level != level - 1
  std::uint64_t missing_edges = 0;     ///< tree edge absent from the graph
  std::uint64_t unreached_parents = 0; ///< parent itself not reached
  std::uint64_t count_mismatch = 0;
};

/// Collective: validates one BFS result; identical report on all ranks.
ValidationReport validate_bfs(mpi::Process& p, const DistGraph& graph,
                              const BfsResult& result);

}  // namespace cbmpi::apps::graph500
