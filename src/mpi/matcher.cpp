#include "mpi/matcher.hpp"

#include <algorithm>
#include <chrono>
#include <tuple>
#include <vector>

namespace cbmpi::mpi {

void Matcher::deliver(fabric::Envelope envelope) {
  {
    const std::scoped_lock lock(mutex_);
    unexpected_.push_back(std::move(envelope));
    ++version_;
  }
  cv_.notify_all();
}

namespace {
bool matches(const fabric::Envelope& env, int src_world, int tag, std::uint64_t comm_id) {
  if (env.comm_id != comm_id) return false;
  if (src_world != kAnySource && env.src != src_world) return false;
  if (tag != kAnyTag && env.tag != tag) return false;
  return true;
}
}  // namespace

std::optional<fabric::Envelope> Matcher::try_match(int src_world, int tag,
                                                   std::uint64_t comm_id) {
  const std::scoped_lock lock(mutex_);
  auto best = unexpected_.end();
  // Per-sender candidates are the *first* matching envelope from each sender
  // (delivery order == sender program order, so taking the first preserves
  // the non-overtaking rule). Among candidates, the earliest virtual
  // availability wins; ties break by source rank then sequence number.
  std::vector<int> seen_sources;
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (!matches(*it, src_world, tag, comm_id)) continue;
    if (src_world != kAnySource) {
      best = it;
      break;
    }
    if (std::find(seen_sources.begin(), seen_sources.end(), it->src) !=
        seen_sources.end())
      continue;
    seen_sources.push_back(it->src);
    if (best == unexpected_.end() ||
        std::tie(it->available_at, it->src, it->seq) <
            std::tie(best->available_at, best->src, best->seq)) {
      best = it;
    }
  }
  if (best == unexpected_.end()) return std::nullopt;
  fabric::Envelope env = std::move(*best);
  unexpected_.erase(best);
  return env;
}

std::optional<Status> Matcher::peek(int src_world, int tag, std::uint64_t comm_id) const {
  const std::scoped_lock lock(mutex_);
  for (const auto& env : unexpected_) {
    if (matches(env, src_world, tag, comm_id))
      return Status{env.src, env.tag, env.size};
  }
  return std::nullopt;
}

std::uint64_t Matcher::version() const {
  const std::scoped_lock lock(mutex_);
  return version_;
}

void Matcher::wait_past(std::uint64_t seen) const {
  std::unique_lock lock(mutex_);
  cv_.wait_for(lock, std::chrono::milliseconds(20), [&] { return version_ != seen; });
}

void Matcher::poke() {
  {
    const std::scoped_lock lock(mutex_);
    ++version_;
  }
  cv_.notify_all();
}

std::size_t Matcher::pending() const {
  const std::scoped_lock lock(mutex_);
  return unexpected_.size();
}

}  // namespace cbmpi::mpi
