#include "container/engine.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cbmpi::container {

Container& Engine::run(topo::HostId host, ContainerSpec spec) {
  auto& host_os = machine_->host_os(host);
  const int total = host_os.hardware().shape().total_cores();
  std::vector<int> sorted(spec.cpuset);
  std::sort(sorted.begin(), sorted.end());
  for (const int core : sorted)
    CBMPI_REQUIRE(core >= 0 && core < total, "container '", spec.name,
                  "' pins core ", core, " outside [0, ", total, ") on ",
                  host_os.hardware().name());
  const auto dup = std::adjacent_find(sorted.begin(), sorted.end());
  CBMPI_REQUIRE(dup == sorted.end(), "container '", spec.name,
                "' lists core ", dup == sorted.end() ? -1 : *dup, " twice");
  for (const auto& existing : containers_) {
    if (&existing->host() != &host_os || existing->spec().cpuset.empty()) continue;
    for (const int core : existing->spec().cpuset)
      CBMPI_REQUIRE(!std::binary_search(sorted.begin(), sorted.end(), core),
                    "container '", spec.name, "' pins core ", core,
                    " already held by container '", existing->spec().name,
                    "' on ", host_os.hardware().name());
  }
  const int id = static_cast<int>(containers_.size());
  containers_.push_back(std::make_unique<Container>(id, std::move(spec), host_os));
  return *containers_.back();
}

std::vector<int> Engine::free_cores(topo::HostId host) const {
  const auto& host_os = machine_->host_os(host);
  std::vector<bool> used(
      static_cast<std::size_t>(host_os.hardware().shape().total_cores()), false);
  for (const auto& cont : containers_) {
    if (&cont->host() != &host_os) continue;
    for (const int core : cont->spec().cpuset)
      used[static_cast<std::size_t>(core)] = true;
  }
  std::vector<int> free;
  for (std::size_t c = 0; c < used.size(); ++c)
    if (!used[c]) free.push_back(static_cast<int>(c));
  return free;
}

std::unique_ptr<osl::SimProcess> Engine::spawn(Container& cont, int core_slot) const {
  return std::make_unique<osl::SimProcess>(cont.host(), cont.namespaces(),
                                           cont.core_for(core_slot));
}

std::unique_ptr<osl::SimProcess> Engine::spawn_native(topo::HostId host,
                                                      topo::CoreId core) const {
  auto& host_os = machine_->host_os(host);
  return std::make_unique<osl::SimProcess>(host_os, host_os.root_namespaces(), core);
}

}  // namespace cbmpi::container
