// LU: the SSOR-style pipelined wavefront kernel. A 2-D grid is partitioned
// into column blocks; each sweep updates u[i][j] from its north (local or
// previous row) and west (remote boundary from the left rank) neighbours, so
// rank r+1 can only start row i after rank r finished it — the classic
// latency-bound software pipeline of NPB LU, entirely small-message
// point-to-point traffic (one value per row per sweep per rank boundary).
//
// Verification: the recurrence is deterministic, so rank 0 gathers the final
// field and recomputes it serially; results must agree to machine precision.
#include "apps/npb/npb.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cbmpi::apps::npb {

namespace {

/// The wavefront recurrence (shared by the distributed and the serial
/// reference computation).
double relax(double north, double west, double forcing) {
  return 0.45 * north + 0.45 * west + 0.1 * forcing;
}

double forcing_at(std::uint64_t seed, int i, int j) {
  return static_cast<double>(mix64(seed ^ (static_cast<std::uint64_t>(i) << 20) ^
                                   static_cast<std::uint64_t>(j))) *
             0x1.0p-64 -
         0.5;
}

}  // namespace

KernelResult run_lu(mpi::Process& p, const LuParams& params) {
  auto& comm = p.world();
  const int nranks = comm.size();
  const int me = comm.rank();
  const int n = params.grid;
  CBMPI_REQUIRE(n % nranks == 0, "LU grid must divide evenly across ranks");
  const int local_cols = n / nranks;
  const int col0 = me * local_cols;

  // u is the local column block with one west ghost column (index 0).
  const auto width = static_cast<std::size_t>(local_cols) + 1;
  std::vector<double> u(static_cast<std::size_t>(n) * width, 0.0);
  auto at = [&](int i, int j_local) -> double& {
    return u[static_cast<std::size_t>(i) * width + static_cast<std::size_t>(j_local)];
  };

  comm.barrier();
  p.sync_time();
  const Micros start = p.now();

  const int west_rank = me > 0 ? me - 1 : -1;
  const int east_rank = me + 1 < nranks ? me + 1 : -1;

  for (int sweep = 0; sweep < params.sweeps; ++sweep) {
    for (int i = 0; i < n; ++i) {
      // West boundary for this row: the true domain boundary on rank 0,
      // otherwise the left rank's last column (pipeline dependency).
      if (west_rank >= 0) {
        double incoming = 0.0;
        comm.recv(std::span<double>(&incoming, 1), west_rank, 40 + (sweep & 7));
        at(i, 0) = incoming;
      } else {
        at(i, 0) = 1.0;  // Dirichlet west wall
      }
      for (int j = 1; j <= local_cols; ++j) {
        const double north = i > 0 ? at(i - 1, j) : 1.0;  // Dirichlet north wall
        at(i, j) =
            relax(north, at(i, j - 1), forcing_at(p.seed(), i, col0 + j - 1));
      }
      p.compute(static_cast<double>(local_cols) * params.ops_per_cell);
      if (east_rank >= 0) {
        const double outgoing = at(i, local_cols);
        comm.send(std::span<const double>(&outgoing, 1), east_rank, 40 + (sweep & 7));
      }
    }
  }

  const Micros elapsed = comm.allreduce_value(p.now() - start, mpi::ReduceOp::Max);

  // --- verification: gather and recompute serially --------------------------
  std::vector<double> mine(static_cast<std::size_t>(n) *
                           static_cast<std::size_t>(local_cols));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < local_cols; ++j)
      mine[static_cast<std::size_t>(i) * static_cast<std::size_t>(local_cols) +
           static_cast<std::size_t>(j)] = at(i, j + 1);
  std::vector<double> gathered(
      me == 0 ? static_cast<std::size_t>(n) * static_cast<std::size_t>(n) : 0);
  comm.gather(std::span<const double>(mine), std::span<double>(gathered), 0);

  bool ok = true;
  double checksum = 0.0;
  if (me == 0) {
    // Reassemble: gathered holds rank-major column blocks.
    std::vector<double> field(static_cast<std::size_t>(n) *
                              static_cast<std::size_t>(n));
    for (int r = 0; r < nranks; ++r)
      for (int i = 0; i < n; ++i)
        for (int j = 0; j < local_cols; ++j)
          field[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(r * local_cols + j)] =
              gathered[static_cast<std::size_t>(r) * mine.size() +
                       static_cast<std::size_t>(i) *
                           static_cast<std::size_t>(local_cols) +
                       static_cast<std::size_t>(j)];

    // Serial reference.
    std::vector<double> ref(field.size(), 0.0);
    for (int sweep = 0; sweep < params.sweeps; ++sweep) {
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          const double north =
              i > 0 ? ref[static_cast<std::size_t>(i - 1) *
                              static_cast<std::size_t>(n) +
                          static_cast<std::size_t>(j)]
                    : 1.0;
          const double west =
              j > 0 ? ref[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
                          static_cast<std::size_t>(j - 1)]
                    : 1.0;
          ref[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
              static_cast<std::size_t>(j)] =
              relax(north, west, forcing_at(p.seed(), i, j));
        }
      }
    }
    double max_err = 0.0;
    for (std::size_t k = 0; k < field.size(); ++k) {
      max_err = std::max(max_err, std::abs(field[k] - ref[k]));
      checksum += field[k];
    }
    ok = max_err < 1e-12 && std::isfinite(checksum);
  }
  const auto all_ok =
      comm.allreduce_value(static_cast<std::int32_t>(ok), mpi::ReduceOp::LogicalAnd);
  comm.bcast(std::span<double>(&checksum, 1), 0);

  KernelResult result;
  result.name = "LU";
  result.time = elapsed;
  result.checksum = checksum;
  result.verified = all_ok != 0;
  return result;
}

}  // namespace cbmpi::apps::npb
