#include "fabric/selector.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cbmpi::fabric {

const char* to_string(LocalityPolicy policy) {
  switch (policy) {
    case LocalityPolicy::HostnameBased: return "hostname-based (default)";
    case LocalityPolicy::ContainerAware: return "container-aware (proposed)";
  }
  return "?";
}

ChannelSelector::ChannelSelector(LocalityPolicy policy, TuningParams tuning,
                                 std::vector<RankEndpoint> endpoints,
                                 const faults::FaultInjector* faults,
                                 faults::FaultLog* fault_log)
    : policy_(policy),
      tuning_(tuning),
      endpoints_(std::move(endpoints)),
      faults_(faults != nullptr && faults->enabled() ? faults : nullptr),
      fault_log_(fault_log) {
  CBMPI_REQUIRE(!endpoints_.empty(), "selector needs at least one endpoint");
  for (const auto& ep : endpoints_)
    CBMPI_REQUIRE(ep.process != nullptr, "endpoint without a process");
  if (faults_ != nullptr) {
    // Resolve every rank's /dev/shm verdict once up front: the probes are
    // pure functions of (seed, rank), and a degraded pair would otherwise
    // re-hash them on every select() for the rest of the job.
    shm_fail_.reserve(endpoints_.size());
    for (int r = 0; r < num_ranks(); ++r)
      shm_fail_.push_back(faults_->shm_segment_fails(r) ? 1 : 0);
    cma_memo_ = std::make_unique<std::atomic<std::uint8_t>[]>(
        endpoints_.size() * endpoints_.size());
  }
}

bool ChannelSelector::cma_denied(int a, int b) const {
  const auto idx = static_cast<std::size_t>(a) * endpoints_.size() +
                   static_cast<std::size_t>(b);
  const std::uint8_t cached = cma_memo_[idx].load(std::memory_order_relaxed);
  if (cached != 0) return cached == 2;
  const bool denied = faults_->cma_permission_denied(a, b);
  cma_memo_[idx].store(denied ? 2 : 1, std::memory_order_relaxed);
  return denied;
}

void ChannelSelector::set_detected_locality(
    std::vector<std::vector<std::uint8_t>> co_resident) {
  CBMPI_REQUIRE(co_resident.size() == endpoints_.size(),
                "locality matrix rank count mismatch");
  detected_ = std::move(co_resident);
}

const RankEndpoint& ChannelSelector::endpoint(int rank) const {
  CBMPI_REQUIRE(rank >= 0 && rank < num_ranks(), "rank out of range: ", rank);
  return endpoints_[static_cast<std::size_t>(rank)];
}

bool ChannelSelector::same_host(int a, int b) const {
  return endpoint(a).process->same_host(*endpoint(b).process);
}

bool ChannelSelector::same_socket(int a, int b) const {
  return endpoint(a).process->same_socket(*endpoint(b).process);
}

bool ChannelSelector::co_resident(int a, int b) const {
  if (a == b) return true;
  switch (policy_) {
    case LocalityPolicy::HostnameBased:
      return endpoint(a).hostname == endpoint(b).hostname;
    case LocalityPolicy::ContainerAware: {
      CBMPI_REQUIRE(!detected_.empty(),
                    "ContainerAware policy used before locality detection ran");
      return detected_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] != 0;
    }
  }
  return false;
}

bool ChannelSelector::cma_usable(int a, int b) const {
  if (!tuning_.use_cma) return false;
  if (faults_ && cma_denied(a, b)) return false;
  return endpoint(a).process->namespaces().shares(osl::NamespaceType::Pid,
                                                  endpoint(b).process->namespaces());
}

bool ChannelSelector::shm_usable(int a, int b) const {
  return faults_ == nullptr || (shm_fail_[static_cast<std::size_t>(a)] == 0 &&
                                shm_fail_[static_cast<std::size_t>(b)] == 0);
}

ChannelSelector::Decision ChannelSelector::select(int src, int dst, Bytes size) const {
  Decision d;
  d.same_socket = same_socket(src, dst);
  d.loopback = same_host(src, dst);
  d.sriov = endpoint(src).sriov || endpoint(dst).sriov;

  if (forced_) {
    d.channel = *forced_;
    switch (*forced_) {
      case ChannelKind::Shm:
        d.protocol = size < tuning_.smp_eager_size ? Protocol::Eager
                                                   : Protocol::Rendezvous;
        break;
      case ChannelKind::Cma:
        d.protocol = Protocol::Rendezvous;  // CMA is always rendezvous
        break;
      case ChannelKind::Hca:
        d.protocol = size < tuning_.iba_eager_threshold ? Protocol::Eager
                                                        : Protocol::Rendezvous;
        break;
    }
    return d;
  }

  if (tuning_.use_shm && co_resident(src, dst)) {
    // Fallback chain, evaluated per pair: CMA -> SHM -> HCA. An injected CMA
    // EPERM demotes large transfers to SHM rendezvous; an injected /dev/shm
    // failure on either endpoint knocks out both SHM paths and drops the
    // pair onto the HCA loopback below.
    if (shm_usable(src, dst)) {
      if (size < tuning_.smp_eager_size) {
        d.channel = ChannelKind::Shm;
        d.protocol = Protocol::Eager;
      } else if (cma_usable(src, dst)) {
        d.channel = ChannelKind::Cma;
        d.protocol = Protocol::Rendezvous;
      } else {
        d.channel = ChannelKind::Shm;
        d.protocol = Protocol::Rendezvous;
        // Attribute the demotion when the *injected* EPERM (not the
        // deployment's namespace config) is what knocked CMA out.
        if (fault_log_ && faults_ && tuning_.use_cma && cma_denied(src, dst) &&
            endpoint(src).process->namespaces().shares(
                osl::NamespaceType::Pid, endpoint(dst).process->namespaces())) {
          const auto [lo, hi] = std::minmax(src, dst);
          if (fault_log_->record_degradation(
                  src, {faults::DegradationKind::CmaFallbackToShm, lo, hi}))
            fault_log_->record_fault(
                src, {faults::FaultKind::CmaEperm, lo, hi, 0.0,
                      "process_vm_readv EPERM (injected)"});
        }
      }
      return d;
    }
    if (fault_log_) {
      const auto [lo, hi] = std::minmax(src, dst);
      fault_log_->record_degradation(
          src, {faults::DegradationKind::ShmFallbackToHca, lo, hi});
    }
  }

  CBMPI_REQUIRE(endpoint(src).hca_accessible && endpoint(dst).hca_accessible,
                "ranks ", src, " and ", dst,
                " must communicate over the HCA but at least one container "
                "was started without --privileged");
  d.channel = ChannelKind::Hca;
  d.protocol = size < tuning_.iba_eager_threshold ? Protocol::Eager
                                                  : Protocol::Rendezvous;
  return d;
}

}  // namespace cbmpi::fabric
