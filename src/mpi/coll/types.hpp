// Collective-algorithm vocabulary shared by the tuning table, the engine,
// the profiler and the trace layer.
//
// `Coll` names the six tunable collectives; `Algo` names every interchangeable
// implementation the communicator can execute. Not every algorithm is valid
// for every collective — `algorithms_for()` / `valid_for()` describe the legal
// pairs, and the tuning-table parser rejects illegal ones with a line number.
//
// `Algo::Auto` defers to the engine's built-in size heuristic (the behaviour
// the library shipped with before the engine existed); `Algo::TwoLevel` is the
// leader-based hierarchical variant layered on top of the flat algorithms —
// its local/leader phases re-enter the engine with the sub-list size to pick
// their own flat algorithm.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace cbmpi::coll {

enum class Coll : std::uint8_t {
  Barrier, Bcast, Reduce, Allreduce, Allgather, Alltoall,
  Count_,
};

inline constexpr std::size_t kColls = static_cast<std::size_t>(Coll::Count_);

enum class Algo : std::uint8_t {
  Auto,               ///< engine heuristic (size/rank-count based)
  TwoLevel,           ///< leader-based hierarchy over locality groups
  Dissemination,      ///< barrier: log2(n) rounds of pairwise tokens
  FlatTree,           ///< linear through the root (bcast/reduce/barrier)
  Binomial,           ///< binomial tree (bcast/reduce)
  VanDeGeijn,         ///< bcast: scatter + ring allgather (large payloads)
  RecursiveDoubling,  ///< allreduce: XOR exchange, power-of-two lists
  Rabenseifner,       ///< allreduce: reduce-scatter + allgather (large)
  ReduceBcast,        ///< allreduce: reduce to list head, then bcast
  Ring,               ///< allgather: bandwidth-optimal ring
  GatherBcast,        ///< allgather: linear gather + binomial bcast
  Pairwise,           ///< alltoall: n-1 sendrecv exchange rounds
  Bruck,              ///< alltoall: log2(n) combined-block rounds (small msgs)
  Spread,             ///< alltoall: all isend/irecv posted at once
  Count_,
};

inline constexpr std::size_t kAlgos = static_cast<std::size_t>(Algo::Count_);

/// Lower-case token used in tuning files and env vars (e.g. "flat_tree").
const char* to_string(Coll coll);
const char* to_string(Algo algo);

std::optional<Coll> parse_coll(std::string_view token);
std::optional<Algo> parse_algo(std::string_view token);

/// The algorithms a tuning entry may legally name for `coll`
/// (always includes Auto; includes TwoLevel where a hierarchical variant
/// exists — i.e. everything except alltoall).
std::span<const Algo> algorithms_for(Coll coll);

bool valid_for(Coll coll, Algo algo);

/// Env var that pins one collective's algorithm, e.g. "CBMPI_BCAST_ALGORITHM".
const char* env_var_for(Coll coll);

}  // namespace cbmpi::coll
