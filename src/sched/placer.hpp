// Placement policies: which hosts and cores a job's ranks land on.
//
// This is the axis the paper's result rides on. The runtime can only
// reschedule intra-host traffic onto SHM/CMA if the *deployment* put the
// communicating ranks on the same host — so the placer decides, before a
// byte moves, how much of a job's traffic can ever leave the HCA.
//
//   * Packed        — fill the emptiest hosts first, contiguous rank blocks
//                     (minimum host count; maximum co-residence for
//                     neighbour-structured traffic).
//   * Spread        — balance ranks round-robin across all hosts (classic
//                     load-levelling; worst case for locality).
//   * Random        — seeded uniform host choice per rank (the baseline a
//                     naive cloud scheduler gives you).
//   * LocalityAware — greedy graph growing over a communication-volume hint
//                     (from the job's body registry entry, or an explicit
//                     matrix, e.g. out of a prior prof run): maximizes the
//                     traffic weight kept co-resident under the current free
//                     core distribution.
//   * TopologyAware — LocalityAware's rank grouping over a host set chosen
//                     by fabric proximity: hosts are accreted in hop-distance
//                     order (same edge switch, then same pod, then cross-pod),
//                     minimizing the expected hop-weighted traffic the fabric
//                     model charges for. Needs the scheduler's host hop
//                     matrix; without one it degrades to LocalityAware.
//
// A placement maps onto the runtime as one container per `ranks_per_container`
// chunk per host with an explicit disjoint cpuset — i.e. placers ultimately
// emit a DeploymentSpec + heterogeneous JobPlacement pair for mpi::run_job.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sched/cluster_state.hpp"
#include "sched/job.hpp"

namespace cbmpi::sched {

/// The five placement strategies described above.
enum class PlacementPolicy { Packed, Spread, Random, LocalityAware, TopologyAware };

/// Lower-case CLI token for the policy ("packed", "locality", ...).
const char* to_string(PlacementPolicy policy);
/// Inverse of to_string(); nullopt for unknown names.
std::optional<PlacementPolicy> parse_policy(const std::string& name);

/// One host's share of a job: which job ranks run there, on which physical
/// cores (parallel arrays; consecutive ranks fill containers in order).
struct HostAssignment {
  topo::HostId host = 0;
  std::vector<int> ranks;
  std::vector<int> cores;
};

/// A complete job-to-cluster mapping: every rank appears in exactly one
/// host's assignment.
struct Placement {
  std::vector<HostAssignment> hosts;  ///< ascending physical host id
};

/// Strategy interface implemented by each PlacementPolicy.
class Placer {
 public:
  virtual ~Placer() = default;
  /// Stable display name ("packed", "locality", ...) for tables and logs.
  virtual const char* name() const = 0;

  /// Chooses hosts/cores for `job` given current free capacity, or nullopt
  /// when the job cannot start now. Pure function of (job, state, seed):
  /// repeated calls — e.g. backfill probes — return identical placements.
  virtual std::optional<Placement> place(const JobSpec& job,
                                         const ClusterState& state) const = 0;
};

/// Factory: the Placer implementing `policy`. `seed` only matters for
/// Random (and ties in LocalityAware); same seed, same placements.
/// `host_hops` — fabric hop distance between every physical host pair
/// (net::Topology::hops) — is consumed by TopologyAware, which copies it;
/// other policies ignore it. TopologyAware without a matrix behaves like
/// LocalityAware.
std::unique_ptr<Placer> make_placer(
    PlacementPolicy policy, std::uint64_t seed,
    const std::vector<std::vector<int>>* host_hops = nullptr);

/// The job's effective communication-volume hint: the spec's explicit matrix
/// when present, else the body's registry hint.
mpi::TrafficMatrix effective_traffic(const JobSpec& job);

/// Pair/traffic locality achieved by a placement.
PlacementStats placement_stats(const JobSpec& job, const Placement& placement,
                               const mpi::TrafficMatrix& traffic);

/// Materializes the placement as a runnable JobConfig: dense job-local host
/// ids, one container per ranks_per_container chunk with an explicit cpuset
/// (or native processes when ranks_per_container == 0), namespace flags from
/// the spec.
mpi::JobConfig make_job_config(const JobSpec& job, const Placement& placement,
                               const topo::HostShape& shape);

}  // namespace cbmpi::sched
