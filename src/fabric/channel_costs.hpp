// Cost structures shared by all channels.
#pragma once

#include "common/units.hpp"

namespace cbmpi::fabric {

/// Cost decomposition of one eager transfer.
struct EagerCosts {
  /// Added to the sender's clock (staging copy, descriptor post, stalls).
  /// The bandwidth term lives here: back-to-back sends serialize on it,
  /// which is what produces realistic windowed-bandwidth behaviour.
  Micros sender = 0.0;
  /// Pure latency from send completion until the payload is visible at the
  /// receiver (queue flag propagation / wire time).
  Micros delivery = 0.0;
  /// Added to the receiver's clock at completion (copy-out of the queue or
  /// eager ring into the user buffer).
  Micros receiver = 0.0;
};

/// Explicit memory-registration (pin-down) cost of one buffer, charged on
/// the HCA rendezvous path when the registration model is on.
struct RegCosts {
  Micros reg = 0.0;    ///< ibv_reg_mr: fixed base + size / pinning bandwidth
  Micros dereg = 0.0;  ///< ibv_dereg_mr: cheaper, same shape
};

/// Registration plan of one rendezvous transfer under the pin-down model:
/// each endpoint's cache outcome, resolved against the pin-down cache before
/// the timeline is computed. A cache hit skips registration entirely; a miss
/// pins the buffer chunk by chunk, overlapped with the RDMA pipeline.
struct RegPlan {
  bool sender_hit = false;
  bool receiver_hit = false;
  /// Dereg work that precedes each side's chunk-0 registration (LRU victims
  /// evicted to make room, transient unpin of oversized buffers).
  Micros sender_extra = 0.0;
  Micros receiver_extra = 0.0;
};

/// Completion times of one rendezvous transfer, computed at match time from
/// the RTS send time and the receiver-side match time.
struct RndvTimes {
  Micros receiver_done = 0.0;
  Micros sender_done = 0.0;
  /// When the receiver's serialized resource (CPU copy engine / PCIe) frees
  /// up — excludes trailing pure-latency terms. 0 means "same as
  /// receiver_done".
  Micros receiver_busy_until = 0.0;
  /// When the sender starts injecting the payload (CTS received, descriptor
  /// posted). The fabric model records the flow from this instant.
  Micros inject_begin = 0.0;
  /// Registration model only (all zero when off): the receiver-side chunk-0
  /// pin window — it delays the CTS, so it sits on the critical path — and
  /// the total registration time that survived pipelining.
  Micros recv_reg_begin = 0.0;
  Micros recv_reg_end = 0.0;
  Micros reg_stall = 0.0;
};

/// Cost of one pipelined one-sided op (put/get) within an epoch.
struct OneSidedCosts {
  /// Minimum spacing between back-to-back ops (message-rate limit).
  Micros gap = 0.0;
  /// Full completion latency of a single op (used by flush / latency tests).
  Micros latency = 0.0;
};

}  // namespace cbmpi::fabric
