// Error handling: a single exception type carrying a formatted message.
//
// The library throws cbmpi::Error for programmer/configuration errors
// (mismatched communicator sizes, invalid ranks, unshared namespaces where
// required, ...). Simulated *runtime* failures that the paper's system would
// surface as error codes (e.g. CMA permission denial) are modelled as status
// returns in the respective modules, not exceptions.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace cbmpi {

class Error : public std::runtime_error {
 public:
  explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

/// Secondary failure: a rank aborted because *another* rank raised first.
/// Distinct from Error so the runtime can rethrow the root cause instead of
/// a bystander's "job aborted" echo.
class AbortedError : public Error {
 public:
  explicit AbortedError(std::string what) : Error(std::move(what)) {}
};

namespace detail {
template <typename... Args>
[[noreturn]] void raise(const char* cond, const char* file, int line, Args&&... args) {
  std::ostringstream os;
  os << file << ":" << line << ": requirement failed: " << cond;
  if constexpr (sizeof...(Args) > 0) {
    os << " — ";
    (os << ... << std::forward<Args>(args));
  }
  throw Error(os.str());
}
}  // namespace detail

}  // namespace cbmpi

/// Precondition check that survives NDEBUG builds; throws cbmpi::Error.
#define CBMPI_REQUIRE(cond, ...)                                              \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::cbmpi::detail::raise(#cond, __FILE__, __LINE__ __VA_OPT__(, ) __VA_ARGS__); \
    }                                                                         \
  } while (false)
