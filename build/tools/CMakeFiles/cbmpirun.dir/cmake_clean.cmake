file(REMOVE_RECURSE
  "CMakeFiles/cbmpirun.dir/cbmpirun.cpp.o"
  "CMakeFiles/cbmpirun.dir/cbmpirun.cpp.o.d"
  "cbmpirun"
  "cbmpirun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbmpirun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
