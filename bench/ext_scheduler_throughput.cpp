// Extension experiment: multi-job scheduling throughput vs placement policy.
//
// The paper shows the runtime can only move traffic onto SHM/CMA when
// communicating ranks are co-resident — which the *scheduler* decides. This
// bench submits one seeded job mix to the same virtual cluster under all
// four placement policies and compares makespan, utilization, queue wait and
// how much traffic stayed on intra-host channels. LocalityAware should beat
// Spread on both makespan and intra-host pair share, and the whole schedule
// must be bit-identical across reruns with the same seed.
#include "bench_util.hpp"

#include "common/rng.hpp"
#include "sched/scheduler.hpp"

using namespace cbmpi;
using namespace cbmpi::bench;

namespace {

/// Deterministic job mix: varied bodies, rank counts and staggered submit
/// times, all derived from the seed. Every 5th job is a wide job that blocks
/// the queue head, so backfill has something to do.
std::vector<sched::JobSpec> make_job_mix(int jobs, int cluster_cores,
                                         std::uint64_t seed) {
  static const char* kBodies[] = {"ring", "pairs", "shift", "allreduce", "alltoall"};
  Xoshiro256 rng(mix64(seed ^ mix64(std::uint64_t{0x5c4ed})));
  std::vector<sched::JobSpec> mix;
  Micros t = 0.0;
  for (int i = 0; i < jobs; ++i) {
    sched::JobSpec job;
    job.body = kBodies[static_cast<std::size_t>(i) % std::size(kBodies)];
    if (i > 0 && i % 5 == 0) {
      job.ranks = std::max(4, cluster_cores / 2);  // wide: blocks the head
    } else {
      job.ranks = 4 + 2 * static_cast<int>(rng.below(3));  // 4, 6 or 8
    }
    job.ranks_per_container = 2;
    job.params.message_size = 4_KiB << rng.below(3);  // 4..16 KiB
    job.params.rounds = 2 + static_cast<int>(rng.below(3));
    job.submit_time = t;
    // Generous walltime estimate (>= any actual runtime here), so EASY
    // backfill only ever uses spare cores and can never delay a queue head.
    job.est_runtime = millis(50.0);
    // Arrivals tighter than job runtimes, so the queue builds and the
    // policies compete for capacity rather than an idle cluster.
    if (i >= jobs / 3) t += 4.0 + 4.0 * static_cast<double>(rng.below(4));
    mix.push_back(job);
  }
  return mix;
}

sched::Scheduler make_scheduler(sched::PlacementPolicy policy, int hosts,
                                const std::vector<sched::JobSpec>& mix,
                                std::uint64_t seed) {
  sched::SchedulerConfig config;
  config.cluster_hosts = hosts;
  config.host_shape = topo::HostShape{2, 4, true};  // small hosts: 8 cores
  config.policy = policy;
  config.seed = seed;
  sched::Scheduler scheduler(config);
  for (const auto& job : mix) scheduler.submit(job);
  return scheduler;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int hosts = static_cast<int>(opts.get_int("hosts", 4, "cluster hosts"));
  const int jobs = static_cast<int>(opts.get_int("jobs", 20, "jobs in the mix"));
  const std::uint64_t seed = declare_seed(opts);
  if (opts.finish("Extension: scheduler throughput vs placement policy")) return 0;

  print_banner("Extension", "cluster scheduling throughput vs placement policy",
               "locality-aware placement keeps communicating ranks "
               "co-resident, so jobs finish faster (SHM/CMA instead of HCA) "
               "and the same cluster drains the same queue sooner");

  const int cluster_cores = hosts * topo::HostShape{2, 4, true}.total_cores();
  const auto mix = make_job_mix(jobs, cluster_cores, seed);
  std::printf("cluster: %d hosts x 8 cores, %d jobs, seed %llu\n\n", hosts, jobs,
              static_cast<unsigned long long>(seed));

  const sched::PlacementPolicy policies[] = {
      sched::PlacementPolicy::Packed, sched::PlacementPolicy::Spread,
      sched::PlacementPolicy::Random, sched::PlacementPolicy::LocalityAware};

  Table table({"policy", "makespan (ms)", "jobs/s", "util", "mean wait (ms)",
               "intra-host pairs", "local ops", "backfilled"});
  sched::ClusterMetrics by_policy[4];
  for (std::size_t i = 0; i < 4; ++i) {
    auto scheduler = make_scheduler(policies[i], hosts, mix, seed);
    scheduler.run();
    const auto& m = scheduler.metrics();
    by_policy[i] = m;
    table.add_row({sched::to_string(policies[i]),
                   Table::num(to_millis(m.makespan), 3),
                   Table::num(static_cast<double>(jobs) / to_millis(m.makespan) * 1e3, 0),
                   Table::num(m.utilization * 100.0, 1) + "%",
                   Table::num(to_millis(m.mean_queue_wait), 3),
                   Table::num(m.intra_host_pair_share() * 100.0, 1) + "%",
                   Table::num(m.local_op_share() * 100.0, 1) + "%",
                   std::to_string(m.backfilled_jobs)});
  }
  table.print(std::cout);

  const auto& spread = by_policy[1];
  const auto& aware = by_policy[3];
  std::printf("\nlocality-aware vs spread: %.1f%% shorter makespan, "
              "intra-host pair share %.1f%% vs %.1f%%\n",
              percent_better(spread.makespan, aware.makespan),
              aware.intra_host_pair_share() * 100.0,
              spread.intra_host_pair_share() * 100.0);

  // Determinism: rerun the locality-aware schedule from scratch; every
  // aggregate (virtual times and op counts alike) must reproduce exactly.
  auto again = make_scheduler(sched::PlacementPolicy::LocalityAware, hosts, mix, seed);
  again.run();
  const auto& rerun = again.metrics();
  const bool identical =
      rerun.makespan == aware.makespan &&
      rerun.mean_queue_wait == aware.mean_queue_wait &&
      rerun.backfilled_jobs == aware.backfilled_jobs &&
      rerun.intra_host_pairs == aware.intra_host_pairs &&
      rerun.shm_ops == aware.shm_ops && rerun.cma_ops == aware.cma_ops &&
      rerun.hca_ops == aware.hca_ops;

  print_shape_check(aware.makespan < spread.makespan,
                    "locality-aware beats spread on makespan");
  print_shape_check(aware.intra_host_pair_share() > spread.intra_host_pair_share(),
                    "locality-aware beats spread on intra-host (SHM+CMA) pair share");
  print_shape_check(aware.local_op_share() >= spread.local_op_share(),
                    "locality-aware keeps at least as many ops on SHM/CMA");
  print_shape_check(identical, "schedule is deterministic across reruns");
  return 0;
}
