#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace cbmpi::obs {

std::string escape_json(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default: {
        const auto byte = static_cast<unsigned char>(c);
        if (byte < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", byte);
          out += buf;
        } else {
          out += c;
        }
      }
    }
  }
  return out;
}

std::string format_double(double value) {
  if (!std::isfinite(value)) return "0";
  // Integers (within uint53-ish range) render without a decimal point so
  // counters passed as doubles stay readable; everything else gets %.10g.
  if (value == std::floor(value) && std::fabs(value) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_elements_.empty()) {
    if (has_elements_.back()) os_ << ",";
    has_elements_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  os_ << "{";
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  os_ << "}";
  has_elements_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  os_ << "[";
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  os_ << "]";
  has_elements_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  separate();
  os_ << "\"" << escape_json(name) << "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  separate();
  os_ << "\"" << escape_json(text) << "\"";
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  separate();
  os_ << format_double(number);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  separate();
  os_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  separate();
  os_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(bool boolean) {
  separate();
  os_ << (boolean ? "true" : "false");
  return *this;
}

}  // namespace cbmpi::obs
