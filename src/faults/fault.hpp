// Deterministic fault injection for the cbmpi runtime.
//
// Real container deployments fail in structured ways: /dev/shm opens fail,
// containers come up with private IPC namespaces (no --ipc=host), CMA gets
// EPERM across unshared PID namespaces, and HCA sends hit transient
// completion errors or link flaps. A FaultPlan describes *rates* for these
// faults; a FaultInjector turns the plan into per-site boolean decisions that
// are pure functions of (seed, site identity) — never of thread schedule —
// so the same seed always injects the same faults, the degradation decisions
// are identical run-to-run, and recovered job times are bit-for-bit
// reproducible. A default (all-zero) plan injects nothing and adds zero
// virtual-time cost anywhere.
//
// Faults are *injected* here but *handled* elsewhere: the locality detector
// falls back to hostname locality, the channel selector degrades CMA → SHM →
// HCA per pair, and the ADI3 engine retries HCA transfers with exponential
// backoff before escalating to a per-rank abort. Every decision lands in the
// job's FaultReport.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace cbmpi::faults {

/// What went wrong — one enumerator per injectable failure mode.
enum class FaultKind : std::uint8_t {
  ShmSegmentFail,   ///< a rank's /dev/shm segment open failed
  PrivateIpc,       ///< a container came up without --ipc=host
  CmaEperm,         ///< process_vm_readv refused across a rank pair
  HcaTransient,     ///< one HCA send/completion attempt failed
  HcaLinkFlap,      ///< HCA attempt fell into a link-down window
  RankCrash,        ///< one rank process died mid-job
  ContainerCrash,   ///< a container died, killing every rank inside it
  HostCrash,        ///< a host died, killing every rank placed on it
};

/// Number of FaultKind enumerators (for count arrays).
inline constexpr std::size_t kFaultKinds = 8;

/// Is this a crash-class fault (kills ranks, job must be requeued) rather
/// than a transient the runtime degrades around?
constexpr bool is_crash(FaultKind kind) {
  return kind == FaultKind::RankCrash || kind == FaultKind::ContainerCrash ||
         kind == FaultKind::HostCrash;
}

/// Human-readable kind name for reports and tables.
const char* to_string(FaultKind kind);

/// How the runtime coped — one enumerator per graceful-degradation path.
enum class DegradationKind : std::uint8_t {
  HostnameLocalityFallback,  ///< rank reverted to hostname-based locality
  IsolatedIpcLocality,       ///< rank only detects peers inside its container
  CmaFallbackToShm,          ///< pair: CMA knocked out, SHM rendezvous used
  ShmFallbackToHca,          ///< pair: SHM knocked out, HCA loopback used
};

/// Human-readable kind name for reports and tables.
const char* to_string(DegradationKind kind);

/// Fault rates for one job. All-zero (the default) means "no faults"; the
/// runtime then skips every injection code path entirely.
struct FaultPlan {
  /// Per-rank probability that its /dev/shm locality/staging segments fail to
  /// open (the rank must degrade to hostname locality and lose SHM).
  double shm_segment_fail_prob = 0.0;

  /// Per-container probability that it is deployed with a private IPC
  /// namespace even though the spec asked for --ipc=host.
  double private_ipc_prob = 0.0;

  /// Per-pair probability that CMA is permission-denied (unshared PID
  /// namespace / restrictive ptrace scope) despite the spec sharing PIDs.
  double cma_eperm_prob = 0.0;

  /// Per-attempt probability that an HCA send/completion fails transiently.
  double hca_transient_prob = 0.0;

  /// Periodic HCA link flap: every `period` microseconds of virtual time the
  /// link drops for `duration` microseconds; attempts inside a down window
  /// fail. Zero period disables flaps.
  Micros hca_link_flap_period = 0.0;
  Micros hca_link_flap_duration = 0.0;

  /// Crash-class faults. Each rank / container / host draws, purely from
  /// (seed, site), whether it crashes during this job and a uniform crash
  /// time in [0, crash_horizon). A crash kills every rank on the failing
  /// unit at that virtual time; the job aborts and surfaces a CrashInfo so
  /// a scheduler can requeue it from its last completed checkpoint.
  double rank_crash_prob = 0.0;
  double container_crash_prob = 0.0;
  double host_crash_prob = 0.0;
  /// Crash times are uniform in [0, crash_horizon) virtual microseconds.
  Micros crash_horizon = 5000.0;
  /// When nonzero, host-crash *eligibility* hashes from this seed instead of
  /// the per-job seed, so one flaky physical host stays flaky across every
  /// job of a scheduled run (and the blacklist can catch it). The crash
  /// *time* still draws from the job seed, so retries see fresh times.
  std::uint64_t host_fault_seed = 0;

  /// True when any crash-class rate is nonzero.
  bool crashes_enabled() const {
    return rank_crash_prob > 0.0 || container_crash_prob > 0.0 ||
           host_crash_prob > 0.0;
  }

  /// True when any rate is nonzero — i.e. the runtime must consult the
  /// injector at all.
  bool enabled() const {
    return shm_segment_fail_prob > 0.0 || private_ipc_prob > 0.0 ||
           cma_eperm_prob > 0.0 || hca_transient_prob > 0.0 ||
           (hca_link_flap_period > 0.0 && hca_link_flap_duration > 0.0) ||
           crashes_enabled();
  }
};

/// Everything known about one crash at requeue time: what died, where, when,
/// and how much checkpointed progress survives. Carried by CrashedError.
struct CrashInfo {
  FaultKind kind = FaultKind::RankCrash;
  int rank = -1;               ///< first rank taken down by the crash
  int host = -1;               ///< physical host of that rank
  Micros at = 0.0;             ///< scheduled crash virtual time (job-local)
  /// Job-local virtual time of the last checkpoint committed *during this
  /// run* (0 when none committed; a restore snapshot from a previous attempt
  /// may still exist).
  Micros last_checkpoint = 0.0;
  int checkpoint_round = 0;    ///< completed rounds at that checkpoint
};

/// A crash-class fault killed the job. Derives from AbortedError (the crash
/// aborts every surviving rank) but carries the root-cause CrashInfo so the
/// runtime and scheduler can distinguish a recoverable crash from a
/// bystander's "job aborted" echo.
class CrashedError : public AbortedError {
 public:
  CrashedError(std::string what, CrashInfo info)
      : AbortedError(std::move(what)), info_(info) {}

  const CrashInfo& info() const { return info_; }

 private:
  CrashInfo info_;
};

/// One injected fault, as it will appear in the FaultReport.
struct FaultEvent {
  FaultKind kind = FaultKind::HcaTransient;
  int rank_a = -1;
  int rank_b = -1;      ///< peer rank, -1 when not pairwise
  Micros at = 0.0;      ///< virtual time of injection (0 for init-time faults)
  std::string detail;
};

/// One degradation decision (per rank or per pair) forced by a fault.
struct DegradationEvent {
  DegradationKind kind = DegradationKind::HostnameLocalityFallback;
  int rank_a = -1;
  int rank_b = -1;  ///< peer rank, -1 when the decision is per-rank
};

/// What the job survived: injected faults, the degradation decisions they
/// forced, per-channel retry counts, and virtual time lost to recovery.
/// Canonicalized (sorted, deduplicated) so the same seed yields an identical
/// report regardless of thread schedule.
struct FaultReport {
  std::vector<FaultEvent> injected;
  std::vector<DegradationEvent> degradations;
  std::uint64_t shm_retries = 0;
  std::uint64_t cma_retries = 0;
  std::uint64_t hca_retries = 0;
  Micros time_lost = 0.0;  ///< virtual time spent on backoff + fallbacks

  /// Did anything at all happen? False for a clean (or fault-free) run.
  bool any() const {
    return !injected.empty() || !degradations.empty() || shm_retries > 0 ||
           cma_retries > 0 || hca_retries > 0;
  }
  /// Retries summed over all channels.
  std::uint64_t total_retries() const { return shm_retries + cma_retries + hca_retries; }

  /// Per-kind counts, one line each — for benches and EXPERIMENTS.md.
  std::string summary() const;
};

/// Stateless, hash-based fault decisions. Every predicate is a pure function
/// of (seed, site identity), so concurrent callers always agree and decisions
/// never depend on call order.
class FaultInjector {
 public:
  /// Binds a plan to the job seed; decisions are fixed from here on.
  FaultInjector(FaultPlan plan, std::uint64_t seed);

  /// The plan this injector was built from.
  const FaultPlan& plan() const { return plan_; }
  /// Shorthand for plan().enabled().
  bool enabled() const { return plan_.enabled(); }

  /// Does this rank's /dev/shm segment open fail (locality list + staging)?
  bool shm_segment_fails(int rank) const;

  /// Is container `container_index` on `host` deployed with private IPC?
  bool private_ipc(int host, int container_index) const;

  /// Is CMA permission-denied between this (unordered) rank pair?
  bool cma_permission_denied(int a, int b) const;

  /// Does attempt `attempt` of the sender's transfer `seq` to `dst` fail at
  /// virtual time `at`? Transient errors and link flaps both land here.
  /// Returns the fault kind, or no fault.
  enum class HcaOutcome : std::uint8_t { Ok, Transient, LinkFlap };
  HcaOutcome hca_attempt(int src, int dst, std::uint64_t seq, int attempt,
                         Micros at) const;

  /// Backoff before retry `attempt` (0-based): base * factor^attempt with
  /// deterministic jitter in [1.0, 1.25) hashed from the transfer identity.
  Micros backoff_delay(int src, int dst, std::uint64_t seq, int attempt,
                       Micros base, double factor) const;

  /// Crash-class decisions: does this unit crash during the job, and when?
  /// Pure functions of (seed, site); nullopt = the unit survives.
  std::optional<Micros> rank_crash_at(int rank) const;
  std::optional<Micros> container_crash_at(int host, int container_index) const;
  /// `physical_host` should be the *cluster-wide* host id when the job runs
  /// under a scheduler (see FaultPlan::host_fault_seed), the job-local id
  /// otherwise.
  std::optional<Micros> host_crash_at(int physical_host) const;

 private:
  double uniform(std::uint64_t site, std::uint64_t a, std::uint64_t b,
                 std::uint64_t c) const;
  double uniform_seeded(std::uint64_t seed, std::uint64_t site, std::uint64_t a,
                        std::uint64_t b, std::uint64_t c) const;

  FaultPlan plan_;
  std::uint64_t seed_;
};

/// Collects fault/degradation observations while the job runs and folds them
/// into a canonical FaultReport. Writes go to per-rank slots owned by that
/// rank's thread (the init thread before ranks start), so recording is
/// race-free and totals fold deterministically in rank order.
class FaultLog {
 public:
  /// One slot per rank; `owner_rank` in every call below must be the rank
  /// whose thread is calling (or the init thread before ranks start).
  explicit FaultLog(int nranks);

  /// Appends an injected-fault observation to the owner's slot.
  void record_fault(int owner_rank, FaultEvent event);
  /// Deduplicated per (kind, pair); returns true when newly recorded.
  bool record_degradation(int owner_rank, DegradationEvent event);
  /// Counts one retry against the channel that `kind` degraded.
  void add_retry(int owner_rank, FaultKind kind);
  /// Adds virtual time spent on backoff / fallback detection.
  void add_time_lost(int owner_rank, Micros lost);

  /// Folds every slot, in rank order, into one canonical sorted report.
  FaultReport finalize() const;

 private:
  struct RankSlot {
    std::vector<FaultEvent> faults;
    std::vector<DegradationEvent> degradations;
    std::set<std::tuple<std::uint8_t, int, int>> seen_degradations;
    std::uint64_t shm_retries = 0;
    std::uint64_t cma_retries = 0;
    std::uint64_t hca_retries = 0;
    Micros time_lost = 0.0;
  };

  std::vector<RankSlot> ranks_;
};

}  // namespace cbmpi::faults
