// EP: generate Gaussian deviates by the polar method, tally the annulus
// counts, and combine with one allreduce — the NPB "embarrassingly parallel"
// kernel. Communication is a single reduction, so EP is the near-zero-overhead
// control case of Fig. 12.
#include "apps/npb/npb.hpp"

#include <array>
#include <cmath>

namespace cbmpi::apps::npb {

KernelResult run_ep(mpi::Process& p, const EpParams& params) {
  auto& comm = p.world();
  comm.barrier();
  p.sync_time();
  const Micros start = p.now();

  auto rng = p.make_rng(0xE9);
  std::array<std::int64_t, 10> bins{};
  double sum_x = 0.0, sum_y = 0.0;
  std::int64_t accepted = 0;

  for (std::uint64_t i = 0; i < params.pairs_per_rank; ++i) {
    const double x = 2.0 * rng.uniform() - 1.0;
    const double y = 2.0 * rng.uniform() - 1.0;
    const double t = x * x + y * y;
    if (t <= 1.0 && t > 0.0) {
      const double factor = std::sqrt(-2.0 * std::log(t) / t);
      const double gx = x * factor;
      const double gy = y * factor;
      sum_x += gx;
      sum_y += gy;
      const auto bin = static_cast<std::size_t>(
          std::min(9.0, std::floor(std::max(std::abs(gx), std::abs(gy)))));
      ++bins[bin];
      ++accepted;
    }
  }
  p.compute(static_cast<double>(params.pairs_per_rank) * params.ops_per_pair);

  std::array<double, 2> sums{sum_x, sum_y};
  std::array<double, 2> global_sums{};
  comm.allreduce(std::span<const double>(sums), std::span<double>(global_sums),
                 mpi::ReduceOp::Sum);

  std::array<std::int64_t, 11> counts{};
  std::copy(bins.begin(), bins.end(), counts.begin());
  counts[10] = accepted;
  std::array<std::int64_t, 11> global_counts{};
  comm.allreduce(std::span<const std::int64_t>(counts),
                 std::span<std::int64_t>(global_counts), mpi::ReduceOp::Sum);

  KernelResult result;
  result.name = "EP";
  result.time = comm.allreduce_value(p.now() - start, mpi::ReduceOp::Max);
  std::int64_t bin_total = 0;
  for (std::size_t b = 0; b < 10; ++b) bin_total += global_counts[b];
  result.verified = bin_total == global_counts[10] && global_counts[10] > 0;
  result.checksum = global_sums[0] + global_sums[1];
  return result;
}

}  // namespace cbmpi::apps::npb
