# Empty compiler generated dependencies file for rma_ext_test.
# This may be replaced when dependencies are built.
