#include "osl/shm.hpp"

#include "common/error.hpp"

namespace cbmpi::osl {

ShmSegment::ShmSegment(Bytes size) : bytes_(size) {
  CBMPI_REQUIRE(size > 0, "zero-sized shm segment");
}

void ShmSegment::store_byte(Bytes offset, std::uint8_t value) {
  CBMPI_REQUIRE(offset < size(), "shm store out of range: ", offset, " >= ", size());
  bytes_[offset].store(value, std::memory_order_release);
}

std::uint8_t ShmSegment::load_byte(Bytes offset) const {
  CBMPI_REQUIRE(offset < size(), "shm load out of range: ", offset, " >= ", size());
  return bytes_[offset].load(std::memory_order_acquire);
}

void ShmSegment::write(Bytes offset, std::span<const std::byte> data) {
  CBMPI_REQUIRE(offset + data.size() <= size(), "shm bulk write out of range");
  const std::scoped_lock lock(bulk_mutex_);
  for (std::size_t i = 0; i < data.size(); ++i)
    bytes_[offset + i].store(static_cast<std::uint8_t>(data[i]), std::memory_order_relaxed);
}

void ShmSegment::read(Bytes offset, std::span<std::byte> out) const {
  CBMPI_REQUIRE(offset + out.size() <= size(), "shm bulk read out of range");
  const std::scoped_lock lock(bulk_mutex_);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<std::byte>(bytes_[offset + i].load(std::memory_order_relaxed));
}

void ShmSegment::clear() {
  for (auto& b : bytes_) b.store(0, std::memory_order_release);
}

std::shared_ptr<ShmSegment> SharedMemoryManager::open(NamespaceId ipc_ns,
                                                      const std::string& name,
                                                      Bytes size) {
  const std::scoped_lock lock(mutex_);
  const Key key{ipc_ns.value, name};
  auto it = segments_.find(key);
  if (it != segments_.end()) {
    CBMPI_REQUIRE(it->second->size() >= size, "existing segment '", name,
                  "' smaller than requested (", it->second->size(), " < ", size, ")");
    return it->second;
  }
  auto segment = std::make_shared<ShmSegment>(size);
  segments_.emplace(key, segment);
  return segment;
}

std::shared_ptr<ShmSegment> SharedMemoryManager::find(NamespaceId ipc_ns,
                                                      const std::string& name) const {
  const std::scoped_lock lock(mutex_);
  const auto it = segments_.find(Key{ipc_ns.value, name});
  return it == segments_.end() ? nullptr : it->second;
}

void SharedMemoryManager::unlink(NamespaceId ipc_ns, const std::string& name) {
  const std::scoped_lock lock(mutex_);
  segments_.erase(Key{ipc_ns.value, name});
}

std::size_t SharedMemoryManager::segment_count() const {
  const std::scoped_lock lock(mutex_);
  return segments_.size();
}

}  // namespace cbmpi::osl
