// Summary statistics used by bench harnesses and the profiler.
#pragma once

#include <cstddef>
#include <vector>

namespace cbmpi {

/// Streaming accumulator (Welford) — O(1) memory, no percentiles.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch summary with percentiles; copies and sorts its input once.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double stddev = 0.0;

  static Summary of(std::vector<double> samples);
};

}  // namespace cbmpi
