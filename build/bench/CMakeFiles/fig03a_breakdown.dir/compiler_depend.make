# Empty compiler generated dependencies file for fig03a_breakdown.
# This may be replaced when dependencies are built.
