// SimProcess: one simulated OS process (== one MPI rank at the mpi layer).
//
// Each SimProcess runs on a dedicated std::thread but all *measured* time is
// its VirtualClock, advanced by channel/compute cost models. The process
// carries the namespace set of the container (or host) it was spawned in and
// a core binding (the launcher pins ranks to cores like the paper pins
// containers).
#pragma once

#include <string>

#include "osl/machine.hpp"
#include "osl/namespaces.hpp"
#include "sim/clock.hpp"
#include "topo/hardware.hpp"

namespace cbmpi::osl {

class SimProcess {
 public:
  SimProcess(HostOs& host, NamespaceSet namespaces, topo::CoreId core)
      : host_(&host), pid_(host.allocate_pid()), namespaces_(namespaces), core_(core) {}

  SimProcess(const SimProcess&) = delete;
  SimProcess& operator=(const SimProcess&) = delete;

  Pid pid() const { return pid_; }
  HostOs& host() const { return *host_; }
  const NamespaceSet& namespaces() const { return namespaces_; }
  topo::CoreId core() const { return core_; }

  /// gethostname() as this process sees it (depends on its UTS namespace).
  std::string hostname() const {
    return host_->hostname(namespaces_.get(NamespaceType::Uts));
  }

  sim::VirtualClock& clock() { return clock_; }
  const sim::VirtualClock& clock() const { return clock_; }

  /// Advances the clock by a compute phase of `ops` abstract work units.
  void compute(double ops) {
    clock_.advance(ops / host_->profile().compute_ops_per_micro);
  }

  bool same_host(const SimProcess& other) const { return host_ == other.host_; }
  bool same_socket(const SimProcess& other) const {
    return same_host(other) && core_.socket == other.core_.socket;
  }

 private:
  HostOs* host_;
  Pid pid_;
  NamespaceSet namespaces_;
  topo::CoreId core_;
  sim::VirtualClock clock_;
};

}  // namespace cbmpi::osl
