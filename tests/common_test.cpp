// Unit tests for the common utilities: RNG determinism, statistics, tables,
// option parsing, units.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace cbmpi {
namespace {

TEST(Units, Literals) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
  EXPECT_EQ(1_GiB, 1024u * 1024 * 1024);
}

TEST(Units, Bandwidth) {
  EXPECT_DOUBLE_EQ(gb_per_s(6.0), 6000.0);   // B/us
  EXPECT_DOUBLE_EQ(mb_per_s(150.0), 150.0);
}

TEST(Units, TimeConversions) {
  EXPECT_DOUBLE_EQ(millis(2.5), 2500.0);
  EXPECT_DOUBLE_EQ(seconds(1.0), 1e6);
  EXPECT_DOUBLE_EQ(to_millis(1500.0), 1.5);
  EXPECT_DOUBLE_EQ(to_seconds(2e6), 2.0);
}

TEST(Units, FormatSize) {
  EXPECT_EQ(format_size(512), "512");
  EXPECT_EQ(format_size(8_KiB), "8K");
  EXPECT_EQ(format_size(128_KiB), "128K");
  EXPECT_EQ(format_size(2_MiB), "2M");
  EXPECT_EQ(format_size(1536), "1536");  // not a whole KiB
}

TEST(Rng, SplitMixDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(splitmix64(s1), splitmix64(s2) + 1);
}

TEST(Rng, Mix64IsPure) {
  EXPECT_EQ(mix64(123), mix64(123));
  EXPECT_NE(mix64(123), mix64(124));
}

TEST(Rng, XoshiroDeterministicAndSeedSensitive) {
  Xoshiro256 a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  bool differs = false;
  Xoshiro256 a2(7);
  for (int i = 0; i < 100; ++i)
    if (a2() != c()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowIsUnbiasedEnough) {
  Xoshiro256 rng(11);
  std::array<int, 7> counts{};
  constexpr int kDraws = 70000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(7)];
  for (const int count : counts) {
    EXPECT_GT(count, kDraws / 7 - 800);
    EXPECT_LT(count, kDraws / 7 + 800);
  }
}

TEST(Rng, BelowZeroAndOne) {
  Xoshiro256 rng(1);
  EXPECT_EQ(rng.below(0), 0u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, JumpDecorrelates) {
  Xoshiro256 a(5);
  Xoshiro256 b(5);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Stats, OnlineBasics) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, EmptyOnline) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Stats, SummaryPercentiles) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(static_cast<double>(i));
  const auto s = Summary::of(samples);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.p95, 95.05, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
}

TEST(Stats, SummaryEmptyAndSingle) {
  EXPECT_EQ(Summary::of({}).count, 0u);
  const auto s = Summary::of({3.0});
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.p99, 3.0);
}

TEST(Table, RendersAligned) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"bee", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Options, ParsesForms) {
  const char* argv[] = {"prog", "--alpha=5", "--beta", "7", "--gamma"};
  Options opts(5, argv);
  EXPECT_EQ(opts.get_int("alpha", 0, "a"), 5);
  EXPECT_EQ(opts.get_int("beta", 0, "b"), 7);
  EXPECT_TRUE(opts.get_flag("gamma", "g"));
  EXPECT_EQ(opts.get("delta", "dft", "d"), "dft");
  EXPECT_FALSE(opts.finish("test"));
}

TEST(Options, DoubleParsing) {
  const char* argv[] = {"prog", "--rate=2.5"};
  Options opts(2, argv);
  EXPECT_DOUBLE_EQ(opts.get_double("rate", 0.0, "r"), 2.5);
  EXPECT_FALSE(opts.finish("test"));
}

TEST(Log, ParseLevel) {
  EXPECT_EQ(logging::parse_level("debug"), LogLevel::Debug);
  EXPECT_EQ(logging::parse_level("INFO"), LogLevel::Info);
  EXPECT_EQ(logging::parse_level("Warn"), LogLevel::Warn);
  EXPECT_EQ(logging::parse_level("warning"), LogLevel::Warn);
  EXPECT_EQ(logging::parse_level("off"), LogLevel::Off);
  EXPECT_EQ(logging::parse_level("none"), LogLevel::Off);
  EXPECT_EQ(logging::parse_level("loud"), std::nullopt);
  EXPECT_EQ(logging::parse_level(""), std::nullopt);
}

TEST(Log, InitFromEnvHonorsVariable) {
  const LogLevel before = logging::level();
  ASSERT_EQ(setenv("CBMPI_LOG_LEVEL", "debug", 1), 0);
  EXPECT_EQ(logging::init_from_env(), LogLevel::Debug);
  EXPECT_EQ(logging::level(), LogLevel::Debug);

  ASSERT_EQ(setenv("CBMPI_LOG_LEVEL", "OFF", 1), 0);
  EXPECT_EQ(logging::init_from_env(), LogLevel::Off);
  EXPECT_EQ(logging::level(), LogLevel::Off);

  // Unparsable values and an unset variable both fall back.
  ASSERT_EQ(setenv("CBMPI_LOG_LEVEL", "shouting", 1), 0);
  EXPECT_EQ(logging::init_from_env(LogLevel::Info), LogLevel::Info);
  ASSERT_EQ(unsetenv("CBMPI_LOG_LEVEL"), 0);
  EXPECT_EQ(logging::init_from_env(), LogLevel::Warn);

  logging::set_level(before);
}

}  // namespace
}  // namespace cbmpi
