file(REMOVE_RECURSE
  "CMakeFiles/pgas_histogram.dir/pgas_histogram.cpp.o"
  "CMakeFiles/pgas_histogram.dir/pgas_histogram.cpp.o.d"
  "pgas_histogram"
  "pgas_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgas_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
