// End-to-end runtime tests: job launch, point-to-point semantics, virtual
// time sanity, deployment scenarios, and the default-vs-locality-aware
// channel behaviour the paper is about.
#include <gtest/gtest.h>

#include <numeric>

#include "mpi/runtime.hpp"
#include "mpi/window.hpp"

namespace cbmpi {
namespace {

using container::DeploymentSpec;
using fabric::ChannelKind;
using fabric::LocalityPolicy;
using mpi::JobConfig;
using mpi::ReduceOp;
using mpi::run_job;

JobConfig two_rank_native() {
  JobConfig config;
  config.deployment = DeploymentSpec::native_hosts(1, 2);
  return config;
}

TEST(Runtime, SingleRankRuns) {
  JobConfig config;
  config.deployment = DeploymentSpec::native_hosts(1, 1);
  bool ran = false;
  const auto result = run_job(config, [&](mpi::Process& p) {
    EXPECT_EQ(p.rank(), 0);
    EXPECT_EQ(p.size(), 1);
    ran = true;
  });
  EXPECT_TRUE(ran);
  EXPECT_EQ(result.rank_times.size(), 1u);
}

TEST(Runtime, EagerSendRecvDeliversPayload) {
  const auto result = run_job(two_rank_native(), [](mpi::Process& p) {
    std::vector<int> data(128);
    if (p.rank() == 0) {
      std::iota(data.begin(), data.end(), 7);
      p.world().send(std::span<const int>(data), 1, 5);
    } else {
      const auto status = p.world().recv(std::span<int>(data), 0, 5);
      EXPECT_EQ(status.source, 0);
      EXPECT_EQ(status.tag, 5);
      EXPECT_EQ(status.count<int>(), 128u);
      for (int i = 0; i < 128; ++i) EXPECT_EQ(data[static_cast<std::size_t>(i)], 7 + i);
    }
  });
  EXPECT_GT(result.job_time, 0.0);
}

TEST(Runtime, RendezvousSendRecvDeliversPayload) {
  const auto result = run_job(two_rank_native(), [](mpi::Process& p) {
    std::vector<double> data(64 * 1024);  // 512 KiB >> eager threshold
    if (p.rank() == 0) {
      for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<double>(i) * 0.5;
      p.world().send(std::span<const double>(data), 1);
    } else {
      p.world().recv(std::span<double>(data), 0);
      EXPECT_DOUBLE_EQ(data[1000], 500.0);
      EXPECT_DOUBLE_EQ(data.back(), static_cast<double>(data.size() - 1) * 0.5);
    }
  });
  // 512 KiB via CMA at ~5.5 GB/s is ~95 us.
  EXPECT_GT(result.job_time, 50.0);
  EXPECT_LT(result.job_time, 1000.0);
}

TEST(Runtime, NativeSameHostUsesNoHca) {
  const auto result = run_job(two_rank_native(), [](mpi::Process& p) {
    std::vector<std::uint8_t> buf(100_KiB);
    if (p.rank() == 0)
      p.world().send(std::span<const std::uint8_t>(buf), 1);
    else
      p.world().recv(std::span<std::uint8_t>(buf), 0);
  });
  EXPECT_EQ(result.profile.total.channel_ops(ChannelKind::Hca), 0u);
  EXPECT_EQ(result.hca_queue_pairs, 0u);
}

TEST(Runtime, DefaultPolicyRoutesCrossContainerTrafficThroughHca) {
  JobConfig config;
  config.deployment = DeploymentSpec::containers(1, 2, 2);  // 2 containers x 1 proc
  config.policy = LocalityPolicy::HostnameBased;
  const auto result = run_job(config, [](mpi::Process& p) {
    std::vector<int> buf(256);
    if (p.rank() == 0)
      p.world().send(std::span<const int>(buf), 1);
    else
      p.world().recv(std::span<int>(buf), 0);
  });
  EXPECT_EQ(result.profile.total.channel_ops(ChannelKind::Shm), 0u);
  EXPECT_EQ(result.profile.total.channel_ops(ChannelKind::Cma), 0u);
  EXPECT_GE(result.profile.total.channel_ops(ChannelKind::Hca), 1u);
  EXPECT_GE(result.hca_queue_pairs, 1u);
}

TEST(Runtime, LocalityAwarePolicyUsesShmAcrossContainers) {
  JobConfig config;
  config.deployment = DeploymentSpec::containers(1, 2, 2);
  config.policy = LocalityPolicy::ContainerAware;
  const auto result = run_job(config, [](mpi::Process& p) {
    std::vector<int> buf(256);  // 1 KiB -> SHM eager
    if (p.rank() == 0)
      p.world().send(std::span<const int>(buf), 1);
    else
      p.world().recv(std::span<int>(buf), 0);
  });
  EXPECT_GE(result.profile.total.channel_ops(ChannelKind::Shm), 1u);
  EXPECT_EQ(result.profile.total.channel_ops(ChannelKind::Hca), 0u);
}

TEST(Runtime, LocalityAwareIsFasterAcrossContainers) {
  auto time_with = [](LocalityPolicy policy) {
    JobConfig config;
    config.deployment = DeploymentSpec::containers(1, 2, 2);
    config.policy = policy;
    return run_job(config, [](mpi::Process& p) {
             std::vector<std::uint8_t> buf(1024);
             for (int i = 0; i < 100; ++i) {
               if (p.rank() == 0) {
                 p.world().send(std::span<const std::uint8_t>(buf), 1);
                 p.world().recv(std::span<std::uint8_t>(buf), 1);
               } else {
                 p.world().recv(std::span<std::uint8_t>(buf), 0);
                 p.world().send(std::span<const std::uint8_t>(buf), 0);
               }
             }
           })
        .job_time;
  };
  const Micros default_time = time_with(LocalityPolicy::HostnameBased);
  const Micros aware_time = time_with(LocalityPolicy::ContainerAware);
  EXPECT_LT(aware_time, default_time * 0.5)
      << "locality-aware ping-pong should be far faster than HCA loopback";
}

TEST(Runtime, AnySourceReceivesBoth) {
  JobConfig config;
  config.deployment = DeploymentSpec::native_hosts(1, 3);
  run_job(config, [](mpi::Process& p) {
    if (p.rank() == 0) {
      int got = 0;
      std::vector<int> sources;
      for (int i = 0; i < 2; ++i) {
        const auto status =
            p.world().recv(std::span<int>(&got, 1), mpi::kAnySource, 3);
        sources.push_back(status.source);
        EXPECT_EQ(got, status.source * 10);
      }
      std::sort(sources.begin(), sources.end());
      EXPECT_EQ(sources, (std::vector<int>{1, 2}));
    } else {
      const int payload = p.rank() * 10;
      p.world().send(std::span<const int>(&payload, 1), 0, 3);
    }
  });
}

TEST(Runtime, IsendIrecvTestCompletes) {
  run_job(two_rank_native(), [](mpi::Process& p) {
    std::vector<float> buf(16);
    if (p.rank() == 0) {
      buf.assign(16, 2.5f);
      auto req = p.world().isend(std::span<const float>(buf), 1, 9);
      p.world().wait(req);
    } else {
      auto req = p.world().irecv(std::span<float>(buf), 0, 9);
      while (!p.world().test(req)) {
      }
      EXPECT_FLOAT_EQ(buf[5], 2.5f);
    }
  });
}

TEST(Runtime, TruncationThrows) {
  EXPECT_THROW(
      run_job(two_rank_native(),
              [](mpi::Process& p) {
                if (p.rank() == 0) {
                  std::vector<int> big(64);
                  p.world().send(std::span<const int>(big), 1);
                } else {
                  std::vector<int> small(8);
                  p.world().recv(std::span<int>(small), 0);
                }
              }),
      Error);
}

TEST(Runtime, ComputeAdvancesVirtualTimeDeterministically) {
  Micros t1 = 0, t2 = 0;
  run_job(two_rank_native(), [&](mpi::Process& p) {
    p.compute(24000.0);
    if (p.rank() == 0) t1 = p.now();
  });
  run_job(two_rank_native(), [&](mpi::Process& p) {
    p.compute(24000.0);
    if (p.rank() == 0) t2 = p.now();
  });
  EXPECT_DOUBLE_EQ(t1, t2);
  EXPECT_GT(t1, 0.0);
}

TEST(Runtime, WindowPutGetAccumulate) {
  JobConfig config;
  config.deployment = DeploymentSpec::native_hosts(1, 2);
  run_job(config, [](mpi::Process& p) {
    std::vector<std::int64_t> memory(32, 0);
    mpi::Window<std::int64_t> window(p.world(), std::span<std::int64_t>(memory));
    window.fence();
    if (p.rank() == 0) {
      const std::int64_t v[2] = {41, 42};
      window.put(std::span<const std::int64_t>(v, 2), 1, 4);
      const std::int64_t inc[1] = {100};
      window.accumulate(std::span<const std::int64_t>(inc, 1), 1, 4, ReduceOp::Sum);
    }
    window.fence();
    if (p.rank() == 1) {
      EXPECT_EQ(memory[4], 141);
      EXPECT_EQ(memory[5], 42);
    }
    // Read back through get.
    std::int64_t fetched[2] = {0, 0};
    if (p.rank() == 0) {
      window.get(std::span<std::int64_t>(fetched, 2), 1, 4);
      window.flush(1);
      EXPECT_EQ(fetched[0], 141);
      EXPECT_EQ(fetched[1], 42);
    }
    window.fence();
  });
}

TEST(Runtime, UnprivilegedContainerCannotReachHca) {
  JobConfig config;
  config.deployment = DeploymentSpec::containers(2, 1, 1);  // 2 hosts, 1 proc each
  config.deployment.privileged = false;
  EXPECT_THROW(run_job(config,
                       [](mpi::Process& p) {
                         int v = 0;
                         if (p.rank() == 0)
                           p.world().send(std::span<const int>(&v, 1), 1);
                         else
                           p.world().recv(std::span<int>(&v, 1), 0);
                       }),
               Error);
}

TEST(Runtime, CmaDeniedWithoutSharedPidNamespace) {
  // Containers share IPC (so SHM and detection work) but not PID. Large
  // messages must fall back to SHM rendezvous, not CMA.
  JobConfig config;
  config.deployment = DeploymentSpec::containers(1, 2, 2);
  config.deployment.share_host_pid = false;
  config.policy = LocalityPolicy::ContainerAware;
  const auto result = run_job(config, [](mpi::Process& p) {
    std::vector<std::uint8_t> buf(64_KiB);
    if (p.rank() == 0)
      p.world().send(std::span<const std::uint8_t>(buf), 1);
    else
      p.world().recv(std::span<std::uint8_t>(buf), 0);
  });
  EXPECT_EQ(result.profile.total.channel_ops(ChannelKind::Cma), 0u);
  EXPECT_GE(result.profile.total.channel_ops(ChannelKind::Shm), 1u);
}

TEST(Runtime, SeparateIpcNamespacesDefeatDetection) {
  // Without --ipc=host each container writes into its own locality list, so
  // even the container-aware policy must fall back to the HCA loopback.
  JobConfig config;
  config.deployment = DeploymentSpec::containers(1, 2, 2);
  config.deployment.share_host_ipc = false;
  config.deployment.share_host_pid = false;
  config.policy = LocalityPolicy::ContainerAware;
  const auto result = run_job(config, [](mpi::Process& p) {
    std::vector<int> buf(64);
    if (p.rank() == 0)
      p.world().send(std::span<const int>(buf), 1);
    else
      p.world().recv(std::span<int>(buf), 0);
  });
  EXPECT_EQ(result.profile.total.channel_ops(ChannelKind::Shm), 0u);
  EXPECT_GE(result.profile.total.channel_ops(ChannelKind::Hca), 1u);
}

TEST(Runtime, RendezvousHeadToHeadDoesNotDeadlock) {
  run_job(two_rank_native(), [](mpi::Process& p) {
    std::vector<std::uint8_t> out(256_KiB, static_cast<std::uint8_t>(p.rank()));
    std::vector<std::uint8_t> in(256_KiB);
    const int other = 1 - p.rank();
    auto recv_req = p.world().irecv(std::span<std::uint8_t>(in), other);
    p.world().send(std::span<const std::uint8_t>(out), other);
    p.world().wait(recv_req);
    EXPECT_EQ(in[123], static_cast<std::uint8_t>(other));
  });
}

TEST(Runtime, JobTimeIsMaxOfRankTimes) {
  const auto result = run_job(two_rank_native(), [](mpi::Process& p) {
    if (p.rank() == 0) p.compute(50000.0);
  });
  EXPECT_DOUBLE_EQ(result.job_time,
                   std::max(result.rank_times[0], result.rank_times[1]));
  EXPECT_GT(result.rank_times[0], result.rank_times[1]);
}

}  // namespace
}  // namespace cbmpi
