// Units and literals shared across the library.
//
// Time inside the simulation is *virtual* and measured in microseconds as a
// double; wall-clock time never enters measured results. Sizes are bytes.
#pragma once

#include <cstdint>
#include <string>

namespace cbmpi {

/// Virtual time in microseconds.
using Micros = double;

/// Message / buffer sizes in bytes.
using Bytes = std::uint64_t;

inline constexpr Bytes operator""_KiB(unsigned long long v) { return Bytes{v} * 1024; }
inline constexpr Bytes operator""_MiB(unsigned long long v) { return Bytes{v} * 1024 * 1024; }
inline constexpr Bytes operator""_GiB(unsigned long long v) { return Bytes{v} * 1024 * 1024 * 1024; }

/// Bandwidths are bytes per microsecond (== MB/s in decimal-ish units).
/// 1 GB/s == 1000 B/us.
using BytesPerMicro = double;

inline constexpr BytesPerMicro gb_per_s(double gbps) { return gbps * 1000.0; }
inline constexpr BytesPerMicro mb_per_s(double mbps) { return mbps; }

/// Converts a bandwidth in B/us to MB/s for reporting (1 MB = 1e6 B).
inline constexpr double to_mb_per_s(BytesPerMicro b) { return b; }

inline constexpr Micros millis(double ms) { return ms * 1000.0; }
inline constexpr Micros seconds(double s) { return s * 1e6; }
inline constexpr double to_millis(Micros us) { return us / 1000.0; }
inline constexpr double to_seconds(Micros us) { return us / 1e6; }

/// Human-readable size, e.g. "8K", "1M", "64", used in bench tables.
std::string format_size(Bytes n);

/// Parses a size string: a decimal byte count with an optional K/M/G
/// binary-power suffix (case-insensitive, "iB"/"B" tails accepted), e.g.
/// "64M", "17k", "512KiB", "1048576". Throws Error on anything else.
Bytes parse_size(const std::string& text);

}  // namespace cbmpi
