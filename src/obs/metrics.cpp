#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace cbmpi::obs {

std::uint64_t HistogramSnapshot::percentile(double q) const {
  if (count == 0 || buckets.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t running = 0;
  for (const auto& bucket : buckets) {
    running += bucket.count;
    if (running >= target) return bucket.upper;
  }
  return buckets.back().upper;
}

std::uint64_t Histogram::bucket_upper(int index) {
  if (index <= 0) return 0;
  if (index >= 64) return std::numeric_limits<std::uint64_t>::max();
  return (std::uint64_t{1} << index) - 1;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.sum = sum_.load(std::memory_order_relaxed);
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
    if (n == 0) continue;
    snap.buckets.push_back({bucket_upper(i), n});
    snap.count += n;
  }
  return snap;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = instruments_[name];
  if (!slot.counter) {
    CBMPI_REQUIRE(!slot.gauge && !slot.histogram,
                  "metric '", name, "' already registered with another kind");
    slot.counter = std::make_unique<Counter>();
  }
  return *slot.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = instruments_[name];
  if (!slot.gauge) {
    CBMPI_REQUIRE(!slot.counter && !slot.histogram,
                  "metric '", name, "' already registered with another kind");
    slot.gauge = std::make_unique<Gauge>();
  }
  return *slot.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = instruments_[name];
  if (!slot.histogram) {
    CBMPI_REQUIRE(!slot.counter && !slot.gauge,
                  "metric '", name, "' already registered with another kind");
    slot.histogram = std::make_unique<Histogram>();
  }
  return *slot.histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  MetricsSnapshot snap;
  // std::map iteration is already name-sorted — the deterministic order the
  // exporters rely on.
  for (const auto& [name, instrument] : instruments_) {
    if (instrument.counter) snap.counters.emplace_back(name, instrument.counter->value());
    if (instrument.gauge) snap.gauges.emplace_back(name, instrument.gauge->value());
    if (instrument.histogram)
      snap.histograms.emplace_back(name, instrument.histogram->snapshot());
  }
  return snap;
}

}  // namespace cbmpi::obs
