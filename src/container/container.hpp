// Containers: lightweight virtualization via namespaces + cpusets.
//
// A Container is a namespace template plus a cpuset on one host. Docker-like
// options modelled (because the paper depends on them):
//   * --privileged            -> HCA device access from inside the container
//   * --ipc=host / --pid=host -> share the host's IPC / PID namespace
//   * --cpuset-cpus           -> pin the container to specific cores
//   * hostname                -> each container gets a unique hostname by
//                                default (new UTS namespace), which is what
//                                defeats hostname-based locality detection.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "osl/machine.hpp"
#include "osl/namespaces.hpp"
#include "topo/hardware.hpp"

namespace cbmpi::container {

struct ContainerSpec {
  std::string name;                ///< also the container's hostname
  bool privileged = true;          ///< access to the host HCA (docker --privileged)
  bool share_host_ipc = true;      ///< docker run --ipc=host
  bool share_host_pid = true;      ///< docker run --pid=host
  bool share_host_net = false;     ///< docker run --net=host
  std::vector<int> cpuset;         ///< flat core indices; empty = all host cores

  // --- hypervisor-based virtualization (the paper's Fig. 2a alternative) ---
  /// Treat this "container" as a KVM-style virtual machine: its own guest
  /// kernel, so ALL namespaces are private regardless of the share flags,
  /// and the HCA is reached through an SR-IOV virtual function.
  bool virtual_machine = false;
  /// Attach the host's IVSHMEM device (inter-VM shared memory); meaningful
  /// only for VMs. Enables SHM (double copy) across co-resident VMs — but
  /// never CMA, because PID namespaces stay private.
  bool ivshmem = false;
};

class Container {
 public:
  Container(int id, ContainerSpec spec, osl::HostOs& host);

  Container(const Container&) = delete;
  Container& operator=(const Container&) = delete;

  int id() const { return id_; }
  const ContainerSpec& spec() const { return spec_; }
  osl::HostOs& host() const { return *host_; }
  const osl::NamespaceSet& namespaces() const { return namespaces_; }

  /// Hostname inside the container (== spec.name, via its UTS namespace).
  std::string hostname() const;

  /// Can processes in this container open the host's InfiniBand device?
  /// VMs reach it through an SR-IOV virtual function instead of --privileged.
  bool can_access_hca() const {
    if (spec_.virtual_machine) return host_->hardware().shape().has_hca;
    return spec_.privileged && host_->hardware().shape().has_hca;
  }

  /// Does HCA traffic from this environment pay the SR-IOV VF overhead?
  bool uses_sriov() const { return spec_.virtual_machine; }

  /// Picks the n-th core of the cpuset (wraps around if oversubscribed).
  topo::CoreId core_for(int slot) const;

 private:
  int id_;
  ContainerSpec spec_;
  osl::HostOs* host_;
  osl::NamespaceSet namespaces_;
};

}  // namespace cbmpi::container
