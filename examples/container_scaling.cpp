// Container-scaling demo: the paper's motivating experiment as an example.
//
// Runs the same Graph 500 BFS workload on one host under Native / 1 / 2 / 4
// container deployments, with both the default (hostname-based) and the
// proposed (container-aware) runtime, and prints the per-scenario times and
// per-channel traffic — a miniature of Figures 1 and 11 plus Table I.
//
//   $ ./container_scaling [--scale=13] [--procs=16]
#include <cstdio>
#include <iostream>

#include "apps/graph500/bfs.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "mpi/runtime.hpp"

int main(int argc, char** argv) {
  using namespace cbmpi;

  Options opts(argc, argv);
  const int scale = static_cast<int>(opts.get_int("scale", 13, "Graph500 scale"));
  const int procs = static_cast<int>(opts.get_int("procs", 16, "MPI processes"));
  if (opts.finish("BFS across container deployment scenarios")) return 0;

  const apps::graph500::EdgeListParams params{scale, 16, 1};
  const auto roots = apps::graph500::choose_roots(params, 2);

  struct Run {
    Micros time = 0.0;
    std::uint64_t shm = 0, cma = 0, hca = 0;
  };

  auto measure = [&](int containers, fabric::LocalityPolicy policy) {
    mpi::JobConfig config;
    config.deployment = containers == 0
                            ? container::DeploymentSpec::native_hosts(1, procs)
                            : container::DeploymentSpec::containers(1, containers, procs);
    config.policy = policy;
    Run run;
    const auto result = mpi::run_job(config, [&](mpi::Process& p) {
      const auto graph = apps::graph500::build_graph(p, params);
      Micros sum = 0.0;
      for (const auto root : roots)
        sum += apps::graph500::run_bfs(p, graph, root).time;
      if (p.rank() == 0) run.time = sum / static_cast<double>(roots.size());
    });
    run.shm = result.profile.total.channel_ops(fabric::ChannelKind::Shm);
    run.cma = result.profile.total.channel_ops(fabric::ChannelKind::Cma);
    run.hca = result.profile.total.channel_ops(fabric::ChannelKind::Hca);
    return run;
  };

  std::printf("Graph500 BFS, scale %d, %d ranks, one host\n\n", scale, procs);
  Table table({"scenario", "default (ms)", "proposed (ms)", "default HCA ops",
               "proposed HCA ops"});
  for (int containers : {0, 1, 2, 4}) {
    const Run def = measure(containers, fabric::LocalityPolicy::HostnameBased);
    const Run opt = measure(containers, fabric::LocalityPolicy::ContainerAware);
    const std::string label =
        containers == 0 ? "Native"
                        : std::to_string(containers) + "-Container" +
                              (containers > 1 ? "s" : "");
    table.add_row({label, Table::num(to_millis(def.time), 3),
                   Table::num(to_millis(opt.time), 3), std::to_string(def.hca),
                   std::to_string(opt.hca)});
  }
  table.print(std::cout);
  std::printf(
      "\nThe default runtime pushes co-resident container traffic onto the HCA\n"
      "loopback (rightmost columns), inflating BFS time; the proposed design\n"
      "detects co-residence and keeps everything on SHM/CMA.\n");
  return 0;
}
