#include "apps/graph500/kronecker.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cbmpi::apps::graph500 {

namespace {
constexpr double kA = 0.57;
constexpr double kB = 0.19;
constexpr double kC = 0.19;
}  // namespace

Edge kronecker_edge(const EdgeListParams& params, std::uint64_t index) {
  Xoshiro256 rng(mix64(params.seed ^ mix64(index + 0x1234567ULL)));
  std::uint64_t u = 0, v = 0;
  for (int level = 0; level < params.scale; ++level) {
    const double r = rng.uniform();
    std::uint64_t ubit = 0, vbit = 0;
    if (r < kA) {
      // top-left quadrant
    } else if (r < kA + kB) {
      vbit = 1;
    } else if (r < kA + kB + kC) {
      ubit = 1;
    } else {
      ubit = 1;
      vbit = 1;
    }
    u = (u << 1) | ubit;
    v = (v << 1) | vbit;
  }
  // Permute vertex labels (mix within range) so high-degree vertices are not
  // clustered at small ids — the spec's vertex scrambling.
  const std::uint64_t mask = params.num_vertices() - 1;
  u = mix64(u ^ (params.seed * 0x2545F4914F6CDD1DULL)) & mask;
  v = mix64(v ^ (params.seed * 0x2545F4914F6CDD1DULL)) & mask;
  return Edge{u, v};
}

std::vector<Edge> kronecker_slice(const EdgeListParams& params, std::uint64_t first,
                                  std::uint64_t last) {
  CBMPI_REQUIRE(first <= last && last <= params.num_edges(),
                "edge slice out of range");
  std::vector<Edge> edges;
  edges.reserve(last - first);
  for (std::uint64_t i = first; i < last; ++i)
    edges.push_back(kronecker_edge(params, i));
  return edges;
}

std::vector<std::uint64_t> choose_roots(const EdgeListParams& params, int count) {
  std::vector<std::uint64_t> roots;
  roots.reserve(static_cast<std::size_t>(count));
  // Stride through the edge list so roots spread over the graph.
  const std::uint64_t stride =
      std::max<std::uint64_t>(1, params.num_edges() / 97);
  for (std::uint64_t i = 0;
       roots.size() < static_cast<std::size_t>(count) && i < params.num_edges();
       i += stride) {
    const Edge e = kronecker_edge(params, i);
    if (e.u == e.v) continue;  // self loops are dropped during construction
    if (std::find(roots.begin(), roots.end(), e.u) == roots.end())
      roots.push_back(e.u);
  }
  CBMPI_REQUIRE(roots.size() == static_cast<std::size_t>(count),
                "could not find ", count, " distinct connected roots");
  return roots;
}

}  // namespace cbmpi::apps::graph500
