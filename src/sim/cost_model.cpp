#include "sim/cost_model.hpp"

#include "common/error.hpp"

namespace cbmpi::sim {

CostModel::CostModel(std::vector<CostSegment> segments) : segments_(std::move(segments)) {
  CBMPI_REQUIRE(!segments_.empty(), "cost model needs at least one segment");
  Bytes prev = 0;
  for (const auto& seg : segments_) {
    CBMPI_REQUIRE(seg.upto > prev, "segments must be strictly increasing");
    CBMPI_REQUIRE(seg.alpha >= 0.0 && seg.bandwidth > 0.0, "invalid segment parameters");
    prev = seg.upto;
  }
  CBMPI_REQUIRE(segments_.back().upto == unbounded(),
                "last segment must cover all sizes (upto == unbounded())");
}

CostModel CostModel::flat(Micros alpha, BytesPerMicro bandwidth) {
  return CostModel({{unbounded(), alpha, bandwidth}});
}

Micros CostModel::cost(Bytes size) const {
  CBMPI_REQUIRE(!segments_.empty(), "cost() on empty model");
  for (const auto& seg : segments_) {
    if (size < seg.upto)
      return seg.alpha + static_cast<double>(size) / seg.bandwidth;
  }
  const auto& last = segments_.back();
  return last.alpha + static_cast<double>(size) / last.bandwidth;
}

double CostModel::effective_bandwidth(Bytes size) const {
  const Micros c = cost(size);
  return c > 0.0 ? static_cast<double>(size) / c : 0.0;
}

}  // namespace cbmpi::sim
