// Virtual-time cluster scheduler: FIFO with EASY-style backfill over a
// shared simulated cluster, executing each placed job through the normal
// cbmpi runtime (mpi::run_job) and folding per-job results into cluster
// metrics (makespan, utilization, queue wait, placement locality).
//
// Deterministic by construction: time is virtual, events are ordered by
// (time, kind, job id), placers are pure functions of (job, state, seed),
// and each job's runtime seed is derived from (scheduler seed, job id) — so
// the same submitted workload reproduces the same schedule, placements and
// job times, run after run.
#pragma once

#include <functional>
#include <vector>

#include "net/fabric.hpp"
#include "obs/metrics.hpp"
#include "sched/cluster_state.hpp"
#include "sched/job.hpp"
#include "sched/placer.hpp"
#include "sched/rebalancer.hpp"
#include "topo/calibration.hpp"

namespace cbmpi::sched {

/// Everything a Scheduler needs to know before the first submit. Plain data;
/// copy freely. One config describes one simulated cluster.
struct SchedulerConfig {
  int cluster_hosts = 4;         ///< identical hosts in the cluster
  topo::HostShape host_shape{};  ///< defaults to the paper's 2x12 testbed
  PlacementPolicy policy = PlacementPolicy::LocalityAware;
  bool backfill = true;          ///< EASY backfill; false = pure FIFO
  std::uint64_t seed = 42;       ///< root of every placement / job seed
  fabric::TuningParams tuning{};             ///< forwarded to every job
  topo::MachineProfile profile = topo::MachineProfile::chameleon_fdr();

  /// Switch on per-job observability (metrics + spans on every JobResult) so
  /// schedule-mode runs can be analyzed (cbmpirun --analyze). Observation is
  /// free in virtual time; the schedule is byte-identical either way.
  bool observe = false;

  /// Fabric model shared by every job (spans the whole cluster, not just the
  /// hosts a job lands on). Also feeds the TopologyAware placer's hop matrix;
  /// with the model off, TopologyAware assumes the smallest fat-tree that
  /// holds cluster_hosts.
  net::FabricConfig fabric{};

  // --- crash recovery ------------------------------------------------------
  /// Requeue budget: a crashed job is resubmitted up to this many times
  /// before it is marked Failed. 0 = never requeue.
  int max_restarts = 3;
  /// Virtual delay before a crashed job's resubmission becomes eligible,
  /// growing by requeue_backoff_factor each attempt (exponential backoff).
  Micros requeue_backoff = 50.0;
  double requeue_backoff_factor = 2.0;
  /// Blacklist a host once this many crashed attempts are attributed to it
  /// (the placer then routes around it). 0 = never blacklist.
  int blacklist_threshold = 3;
  /// Default coordinated-checkpoint interval for jobs whose spec leaves
  /// JobSpec::checkpoint_interval negative. 0 = checkpoints off.
  Micros checkpoint_interval = 0.0;

  // --- live migration / elastic rebalancing (DESIGN.md §17) ----------------
  /// Rebalancing policy consulted at every job launch; Off (the default)
  /// leaves the schedule byte-identical to a scheduler without the feature.
  migrate::MigrationPolicy migrate_policy = migrate::MigrationPolicy::Off;
  /// Cost gate every proposal must pass (margin, pre-copy schedule).
  migrate::CostModel migrate_cost{};
};

/// One host removed from placement: when, and after how many crashes.
struct BlacklistEvent {
  topo::HostId host = 0;
  Micros at = 0.0;
  int crashes = 0;
};

/// The cluster control plane: submit jobs, then run() once to drain the
/// queue in virtual time. Not thread-safe; drive it from one thread.
class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig config);

  /// Queues a job; returns its id. Jobs with equal submit times keep FIFO
  /// order by priority (higher first), then submission order. Throws if the
  /// job can never fit the cluster.
  int submit(JobSpec spec);

  /// Drains the queue: advances virtual time, places and executes every job,
  /// releases capacity at completions. Returns the per-job outcomes, in
  /// completion order. Call once after all submits.
  const std::vector<ScheduledJob>& run();

  /// Completed jobs, in completion order (empty before run()).
  const std::vector<ScheduledJob>& jobs() const { return done_; }
  /// Cluster-wide aggregates (makespan, utilization, waits, channel ops);
  /// meaningful after run().
  const ClusterMetrics& metrics() const { return metrics_; }
  /// The configuration this scheduler was built with (never changes).
  const SchedulerConfig& config() const { return config_; }
  /// Hosts blacklisted during the run, in blacklisting order.
  const std::vector<BlacklistEvent>& blacklist_events() const {
    return blacklist_events_;
  }

  /// Publishes the run's ClusterMetrics plus per-job wait/runtime figures
  /// into an obs::MetricsRegistry (names under "sched."). Call after run().
  void export_metrics(obs::MetricsRegistry& registry) const;

  /// Test seam: replaces mpi::run_job execution (e.g. with a canned-duration
  /// stub). The default runner instantiates the job's named body from the
  /// registry and runs it under the placed JobConfig.
  using Runner = std::function<mpi::JobResult(const mpi::JobConfig&, const JobSpec&)>;
  void set_runner(Runner runner) { runner_ = std::move(runner); }

  /// Test seam for accepted migrations. The default runs the job through
  /// migrate::Engine::run with the rebalancer's plan.
  using MigrateRunner = std::function<mpi::JobResult(
      const mpi::JobConfig&, const JobSpec&, const migrate::MigrationPlan&)>;
  void set_migrate_runner(MigrateRunner runner) {
    migrate_runner_ = std::move(runner);
  }

 private:
  struct Running {
    int job_id = 0;
    Micros end_time = 0.0;
    int cores = 0;
  };

  bool try_start(const JobSpec& job, Micros now, bool backfilled);
  /// Crash bookkeeping for one attempt: record the outcome, attribute the
  /// crash to its host (possibly blacklisting it), account lost work, and
  /// requeue the job with backoff — or mark it Failed when the budget is
  /// spent. May insert into pending_ (callers must not hold references).
  void handle_crash(ScheduledJob& record, const JobSpec& job, Micros now,
                    const faults::CrashInfo& info,
                    std::shared_ptr<const mpi::CheckpointData> checkpoint,
                    int checkpoints_committed);
  /// Records a job the cluster can no longer place (e.g. after blacklisting)
  /// as Failed without running it.
  void fail_unplaceable(JobSpec job, Micros now);
  /// Earliest virtual time the blocked queue head could get its cores, plus
  /// how many cores beyond its need will then be free (the backfill window).
  void reservation_for(int cores_needed, Micros now, Micros* shadow_time,
                       int* spare_cores) const;

  SchedulerConfig config_;
  topo::Cluster cluster_;
  ClusterState state_;
  std::unique_ptr<Placer> placer_;
  Runner runner_;
  std::unique_ptr<ElasticRebalancer> rebalancer_;  ///< null when policy Off
  MigrateRunner migrate_runner_;

  std::vector<JobSpec> pending_;   ///< submitted, not yet started
  std::vector<Running> running_;
  std::vector<ScheduledJob> done_;
  ClusterMetrics metrics_{};
  int next_id_ = 0;
  bool ran_ = false;

  // Recovery bookkeeping, folded into metrics_ at the end of run().
  std::vector<int> host_crashes_;  ///< crashed attempts per physical host
  std::vector<BlacklistEvent> blacklist_events_;
  int crashes_ = 0;
  int requeues_ = 0;
  int restarts_from_checkpoint_ = 0;
  int checkpoints_committed_ = 0;
  int jobs_failed_ = 0;
  Micros lost_work_us_ = 0.0;
  Micros completed_work_us_ = 0.0;

  // Migration bookkeeping, folded into metrics_ at the end of run().
  int migrations_proposed_ = 0;
  int migrations_rejected_ = 0;
  int migrations_executed_ = 0;
  Micros migration_pause_us_ = 0.0;
  Micros migration_win_us_ = 0.0;
  Micros migration_cost_us_ = 0.0;
};

}  // namespace cbmpi::sched
