file(REMOVE_RECURSE
  "CMakeFiles/fig11_graph500_proposed.dir/fig11_graph500_proposed.cpp.o"
  "CMakeFiles/fig11_graph500_proposed.dir/fig11_graph500_proposed.cpp.o.d"
  "fig11_graph500_proposed"
  "fig11_graph500_proposed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_graph500_proposed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
