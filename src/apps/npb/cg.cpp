// CG: conjugate gradient on the 2-D 5-point Poisson operator with a 1-D
// row-block decomposition. Communication per iteration: two halo exchanges
// worth of boundary rows (sendrecv with the up/down neighbours inside each
// matvec) and two scalar allreduces (the dot products) — the reduction-heavy
// profile that makes CG the paper's headline NPB kernel (11 % gain).
#include "apps/npb/npb.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cbmpi::apps::npb {

namespace {

/// Row-block partition of `grid` rows over `nranks` ranks.
struct RowBlock {
  int start = 0;
  int count = 0;
};

RowBlock block_of(int grid, int nranks, int rank) {
  const int base = grid / nranks;
  const int extra = grid % nranks;
  RowBlock b;
  b.count = base + (rank < extra ? 1 : 0);
  b.start = rank * base + std::min(rank, extra);
  return b;
}

}  // namespace

KernelResult run_cg(mpi::Process& p, const CgParams& params) {
  auto& comm = p.world();
  const int nranks = comm.size();
  const int me = comm.rank();
  const int grid = params.grid;
  CBMPI_REQUIRE(grid >= nranks, "CG grid must have at least one row per rank");

  const RowBlock rows = block_of(grid, nranks, me);
  const auto local = static_cast<std::size_t>(rows.count) *
                     static_cast<std::size_t>(grid);
  const auto stride = static_cast<std::size_t>(grid);

  // Vectors with ghost rows at plane 0 and plane rows.count+1.
  auto padded = [&](std::size_t planes) { return (planes + 2) * stride; };
  std::vector<double> x(padded(static_cast<std::size_t>(rows.count)), 0.0);
  std::vector<double> r(local), d(padded(static_cast<std::size_t>(rows.count)), 0.0);
  std::vector<double> q(local);

  const int up = rows.start > 0 ? me - 1 : -1;
  const int down = rows.start + rows.count < grid ? me + 1 : -1;

  auto halo_exchange = [&](std::vector<double>& v) {
    // v has ghost rows; interior rows are [1, rows.count].
    std::vector<mpi::Request> reqs;
    if (up >= 0) {
      reqs.push_back(comm.irecv(std::span<double>(v.data(), stride), up, 11));
      reqs.push_back(
          comm.isend(std::span<const double>(v.data() + stride, stride), up, 12));
    }
    if (down >= 0) {
      const std::size_t last = static_cast<std::size_t>(rows.count) * stride;
      reqs.push_back(
          comm.irecv(std::span<double>(v.data() + last + stride, stride), down, 12));
      reqs.push_back(comm.isend(std::span<const double>(v.data() + last, stride),
                                down, 11));
    }
    comm.wait_all(reqs);
  };

  // y = A v (v padded with ghosts), 5-point Poisson with Dirichlet walls.
  auto matvec = [&](std::vector<double>& v, std::vector<double>& y) {
    halo_exchange(v);
    for (int i = 0; i < rows.count; ++i) {
      const std::size_t row = static_cast<std::size_t>(i + 1) * stride;
      const std::size_t out = static_cast<std::size_t>(i) * stride;
      for (int j = 0; j < grid; ++j) {
        const auto jj = static_cast<std::size_t>(j);
        double value = 4.0 * v[row + jj];
        value -= v[row - stride + jj];            // up (ghost ok)
        value -= v[row + stride + jj];            // down (ghost ok)
        if (j > 0) value -= v[row + jj - 1];
        if (j + 1 < grid) value -= v[row + jj + 1];
        y[out + jj] = value;
      }
    }
    p.compute(static_cast<double>(local) * params.ops_per_row);
  };

  auto dot = [&](const std::vector<double>& a, const std::vector<double>& b) {
    double local_sum = 0.0;
    for (std::size_t i = 0; i < local; ++i) local_sum += a[i] * b[i];
    p.compute(static_cast<double>(local) * 2.0);
    return comm.allreduce_value(local_sum, mpi::ReduceOp::Sum);
  };

  comm.barrier();
  p.sync_time();
  const Micros start_time = p.now();

  // b is a deterministic pseudo-random field keyed by the *global* cell
  // index (rank-count invariant, and spectrally rich so CG contracts the
  // residual from the first iterations); x = 0; r = b; d = r.
  for (std::size_t i = 0; i < local; ++i) {
    const std::uint64_t global_cell =
        (static_cast<std::uint64_t>(rows.start) + i / stride) * stride + i % stride;
    r[i] = static_cast<double>(mix64(global_cell ^ 0xC6)) * 0x1.0p-64 - 0.5;
  }
  for (int i = 0; i < rows.count; ++i)
    for (int j = 0; j < grid; ++j)
      d[static_cast<std::size_t>(i + 1) * stride + static_cast<std::size_t>(j)] =
          r[static_cast<std::size_t>(i) * stride + static_cast<std::size_t>(j)];

  double rho = dot(r, r);
  const double rho0 = rho;

  for (int it = 0; it < params.iterations; ++it) {
    matvec(d, q);
    double dq = 0.0;
    for (std::size_t i = 0; i < local; ++i)
      dq += d[(i / stride + 1) * stride + i % stride] * q[i];
    p.compute(static_cast<double>(local) * 2.0);
    dq = comm.allreduce_value(dq, mpi::ReduceOp::Sum);
    const double alpha = rho / dq;

    for (std::size_t i = 0; i < local; ++i) {
      const std::size_t di = (i / stride + 1) * stride + i % stride;
      x[di] += alpha * d[di];
      r[i] -= alpha * q[i];
    }
    p.compute(static_cast<double>(local) * 4.0);

    const double rho_new = dot(r, r);
    const double beta = rho_new / rho;
    rho = rho_new;
    for (std::size_t i = 0; i < local; ++i) {
      const std::size_t di = (i / stride + 1) * stride + i % stride;
      d[di] = r[i] + beta * d[di];
    }
    p.compute(static_cast<double>(local) * 2.0);
  }

  KernelResult result;
  result.name = "CG";
  result.time = comm.allreduce_value(p.now() - start_time, mpi::ReduceOp::Max);
  result.checksum = std::sqrt(rho);
  result.verified = rho < rho0 && std::isfinite(rho);
  return result;
}

}  // namespace cbmpi::apps::npb
