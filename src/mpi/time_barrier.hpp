// Out-of-band virtual-time barrier.
//
// Used for job init/finalize and for bench phase alignment — NOT for
// MPI_Barrier (which is a real dissemination algorithm over the channels and
// pays their costs). All participants block (wall-clock) until everyone
// arrived, and each receives the maximum virtual time, to which it then
// aligns its clock.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/units.hpp"

namespace cbmpi::mpi {

class TimeBarrier {
 public:
  explicit TimeBarrier(int participants);

  /// Blocks until all participants arrived; returns the max of their times.
  Micros arrive_and_wait(Micros my_time);

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int participants_;
  int waiting_ = 0;
  std::uint64_t generation_ = 0;
  Micros current_max_ = 0.0;
  Micros published_max_ = 0.0;
};

}  // namespace cbmpi::mpi
