// Deterministic pseudo-random number generation.
//
// Simulation results must be reproducible across runs and machines, so all
// randomness flows through these generators with explicit seeds; std::rand /
// std::random_device are never used. Xoshiro256** is the workhorse; SplitMix64
// seeds it and supplies cheap stateless hashing (used e.g. by the Kronecker
// graph generator to generate edge-local randomness without communication).
#pragma once

#include <array>
#include <cstdint>

namespace cbmpi {

/// Stateless 64-bit mix; also usable as a hash of a counter.
std::uint64_t splitmix64(std::uint64_t& state);

/// One-shot mix of a value (does not mutate an external state).
std::uint64_t mix64(std::uint64_t value);

/// xoshiro256** — fast, high-quality, deterministic PRNG.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  result_type operator()();

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform integer in [0, bound) without modulo bias (Lemire reduction).
  std::uint64_t below(std::uint64_t bound);

  /// Jump ahead by 2^128 states; used to derive independent per-rank streams.
  void jump();

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace cbmpi
