#!/usr/bin/env python3
"""Perf-regression gate over bench --json artifacts, run by CI.

Compares a freshly produced bench artifact against the committed baseline
(`BENCH_*.json` at the repo root) row by row and fails when any hot-path
metric regressed beyond tolerance:

  * rows are matched on (label, bytes); a baseline row missing from the
    fresh artifact is an error (a silently dropped configuration is how
    regressions hide)
  * latency_us may rise by at most --tol (relative); bandwidth_mbps may
    fall by at most --tol
  * improvements and new rows are reported as info, never failures
  * the two artifacts must come from the same bench (same "bench" field)

The simulator is deterministic in virtual time, so on an unchanged model
fresh == baseline exactly and any delta at all is a model change. The
default ±10% tolerance is headroom for *intentional* model tuning; a PR
that shifts a metric past it must regenerate the baseline and say why.

Usage:
  check_regress.py --fresh fig08.json --baseline BENCH_fig08_pt2pt.json
  check_regress.py --fresh reg.json --baseline BENCH_....json --tol 0.05

Exit status: 0 = within tolerance, 1 = regression/missing rows, 2 = usage.
"""
from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"check_regress: cannot read {path}: {exc}")
    for key in ("bench", "rows"):
        if key not in doc:
            sys.exit(f"check_regress: {path}: not a bench artifact (no '{key}')")
    return doc


def index_rows(doc: dict, path: str) -> dict:
    rows = {}
    for row in doc["rows"]:
        key = (row.get("label"), row.get("bytes"))
        if key in rows:
            sys.exit(f"check_regress: {path}: duplicate row {key}")
        rows[key] = row
    return rows


def rel_delta(fresh: float, base: float) -> float:
    """Relative change, sign-normalized so positive always means 'worse'
    is possible — callers compare against the metric's bad direction."""
    if base == 0.0:
        return 0.0 if fresh == 0.0 else float("inf")
    return (fresh - base) / base


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--fresh", required=True, help="artifact from this build")
    ap.add_argument("--baseline", required=True, help="committed BENCH_*.json")
    ap.add_argument("--tol", type=float, default=0.10,
                    help="relative tolerance per metric (default 0.10)")
    args = ap.parse_args()
    if args.tol < 0.0:
        ap.error("--tol must be >= 0")

    fresh_doc = load(args.fresh)
    base_doc = load(args.baseline)
    if fresh_doc["bench"] != base_doc["bench"]:
        sys.exit(f"check_regress: bench mismatch: fresh is "
                 f"'{fresh_doc['bench']}', baseline is '{base_doc['bench']}'")

    fresh = index_rows(fresh_doc, args.fresh)
    base = index_rows(base_doc, args.baseline)

    # (key, metric, fresh value, base value, relative delta)
    failures = []
    improvements = []
    checked = 0
    for key, base_row in sorted(base.items(), key=lambda kv: str(kv[0])):
        fresh_row = fresh.get(key)
        if fresh_row is None:
            failures.append((key, "row", None, None, None))
            continue
        # higher latency is a regression; higher bandwidth is an improvement
        for metric, worse_if_higher in (("latency_us", True),
                                        ("bandwidth_mbps", False)):
            b = float(base_row.get(metric, 0.0))
            f = float(fresh_row.get(metric, 0.0))
            if b == 0.0 and f == 0.0:
                continue  # metric not produced by this row
            checked += 1
            d = rel_delta(f, b)
            regression = d if worse_if_higher else -d
            if regression > args.tol:
                failures.append((key, metric, f, b, d))
            elif regression < 0.0:
                improvements.append((key, metric, f, b, d))

    name = base_doc["bench"]
    for key, metric, f, b, d in improvements:
        print(f"info: {name} {key[0]}@{key[1]}B {metric}: "
              f"{f:.4g} vs {b:.4g} ({d:+.1%}), improved")
    for key, metric, f, b, d in failures:
        if metric == "row":
            print(f"FAIL: {name} {key[0]}@{key[1]}B: row missing from "
                  f"fresh artifact", file=sys.stderr)
        else:
            print(f"FAIL: {name} {key[0]}@{key[1]}B {metric}: "
                  f"{f:.4g} vs baseline {b:.4g} ({d:+.1%}, tol "
                  f"±{args.tol:.0%})", file=sys.stderr)
    new_rows = len(fresh) - (len(base) - sum(1 for x in failures
                                             if x[1] == "row"))
    print(f"check_regress: {name}: {checked} metrics checked over "
          f"{len(base)} baseline rows ({new_rows} new in fresh), "
          f"{len(improvements)} improved, {len(failures)} failing")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
