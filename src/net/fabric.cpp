#include "net/fabric.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cbmpi::net {

const char* to_string(FabricModel model) {
  switch (model) {
    case FabricModel::Ideal: return "ideal";
    case FabricModel::Flat: return "flat";
    case FabricModel::FatTree: return "fattree";
  }
  return "?";
}

FabricConfig FabricConfig::parse(const std::string& spec) {
  FabricConfig config;
  if (spec == "ideal") {
    config.model = FabricModel::Ideal;
    return config;
  }
  if (spec == "flat") {
    config.model = FabricModel::Flat;
    return config;
  }
  if (spec == "fattree" || spec.rfind("fattree:", 0) == 0) {
    config.model = FabricModel::FatTree;
    if (spec.size() > 8) {
      const std::string arg = spec.substr(8);
      std::size_t used = 0;
      int k = 0;
      try {
        k = std::stoi(arg, &used);
      } catch (...) {
        used = 0;
      }
      CBMPI_REQUIRE(used == arg.size() && k >= 2 && k % 2 == 0,
                    "bad fat-tree arity '", arg,
                    "' in --fabric (need an even integer >= 2)");
      config.arity = k;
    }
    return config;
  }
  CBMPI_REQUIRE(false, "unknown fabric spec '", spec,
                "' (expected ideal, flat, or fattree:<k>)");
  return config;
}

Fabric::Fabric(const FabricConfig& config, const topo::MachineProfile& profile,
               std::vector<int> vfs_per_host)
    : config_(config),
      sriov_derate_(profile.sriov_bw_derate),
      vfs_per_host_(std::move(vfs_per_host)) {
  CBMPI_REQUIRE(config_.enabled(), "Fabric requires a non-Ideal model");
  const int hosts = config_.hosts > 0
                        ? config_.hosts
                        : static_cast<int>(vfs_per_host_.size());
  CBMPI_REQUIRE(hosts > 0, "fabric needs at least one host");
  CBMPI_REQUIRE(static_cast<int>(vfs_per_host_.size()) <= hosts,
                "vfs_per_host covers ", vfs_per_host_.size(),
                " hosts but the fabric only has ", hosts);
  vfs_per_host_.resize(static_cast<std::size_t>(hosts), 0);
  CBMPI_REQUIRE(config_.link_bw_gbps >= 0.0, "--link-bw must be >= 0");
  CBMPI_REQUIRE(config_.vf_limit >= 0, "--vf-limit must be >= 0");

  const BytesPerMicro link_bw = config_.link_bw_gbps > 0.0
                                    ? gb_per_s(config_.link_bw_gbps)
                                    : profile.hca_link_bw;
  // Half the wire latency per link: a 2-link path through one switch then
  // costs exactly hca_wire_latency + hca_switch_latency, matching the ideal
  // model bit-for-bit (0.5x is an exact float operation).
  const Micros link_latency = profile.hca_wire_latency * 0.5;
  topology_ = config_.model == FabricModel::Flat
                  ? Topology::flat(hosts, link_bw, link_latency,
                                   profile.hca_switch_latency)
                  : Topology::fattree(config_.arity, hosts, link_bw, link_latency,
                                      profile.hca_switch_latency);

  link_caps_.reserve(static_cast<std::size_t>(topology_.num_links()));
  for (int l = 0; l < topology_.num_links(); ++l)
    link_caps_.push_back(topology_.link(l).bw);
}

double Fabric::vf_share(int host) const {
  if (config_.vf_limit <= 0) return 1.0;
  CBMPI_REQUIRE(host >= 0 && host < topology_.num_hosts(), "bad host ", host);
  const int provisioned = vfs_per_host_[static_cast<std::size_t>(host)];
  if (provisioned <= config_.vf_limit) return 1.0;
  return static_cast<double>(config_.vf_limit) / static_cast<double>(provisioned);
}

BytesPerMicro Fabric::flow_rate_cap(int src_host, int dst_host, bool sriov) const {
  BytesPerMicro cap = topology_.min_path_bw(src_host, dst_host);
  cap *= std::min(vf_share(src_host), vf_share(dst_host));
  if (sriov) cap *= sriov_derate_;
  return cap;
}

FabricSettle Fabric::settle(std::vector<FlowRecord> records) const {
  std::vector<Flow> flows;
  flows.reserve(records.size());
  for (const auto& r : records) {
    Flow f;
    f.key = r.key;
    f.path = topology_.route(r.src_host, r.dst_host);
    f.bytes = static_cast<double>(r.bytes);
    f.start = r.start;
    f.rate_cap = flow_rate_cap(r.src_host, r.dst_host, r.sriov);
    flows.push_back(std::move(f));
  }
  const SettleResult settled = net::settle(std::move(flows), link_caps_);

  FabricSettle out;
  out.report.enabled = true;
  out.report.model = config_.model;
  out.report.arity = topology_.arity();
  out.report.hosts = topology_.num_hosts();
  out.report.switches = topology_.num_switches();
  out.report.links = topology_.num_links();
  out.report.transfers = settled.flows.size();

  std::map<FlowKey, double> factors;
  for (const auto& flow : settled.flows) {
    if (flow.factor > 1.0) {
      ++out.report.congested_transfers;
      out.report.max_factor = std::max(out.report.max_factor, flow.factor);
      factors.emplace(flow.key, flow.factor);
    }
    const auto hops = static_cast<std::size_t>(flow.hops);
    if (out.report.hop_histogram.size() <= hops)
      out.report.hop_histogram.resize(hops + 1, 0);
    ++out.report.hop_histogram[hops];
  }
  out.congestion = CongestionMap(std::move(factors));

  double mean_sum = 0.0;
  for (int l = 0; l < static_cast<int>(settled.links.size()); ++l) {
    const auto& stats = settled.links[static_cast<std::size_t>(l)];
    if (stats.peak <= 0.0) continue;
    out.report.link_utils.push_back({l, stats.peak, stats.mean});
    out.report.max_peak_util = std::max(out.report.max_peak_util, stats.peak);
    mean_sum += stats.mean;
  }
  if (!out.report.link_utils.empty())
    out.report.mean_util =
        mean_sum / static_cast<double>(out.report.link_utils.size());
  return out;
}

}  // namespace cbmpi::net
