// net::Fabric — the InfiniBand fabric model the HCA channel routes through.
//
// Combines a Topology (flat crossbar or k-ary fat-tree), deterministic
// destination-based routing, per-host SR-IOV VF caps, and the max-min
// link-contention engine. The runtime drives it in two deterministic passes:
//
//   1. record — the job runs on hop-latency + static VF caps (pure functions
//      of virtual time) while every inter-host HCA payload is appended to a
//      FlowLog;
//   2. settle + apply — the flow set is canonically sorted and settled by the
//      contention engine into per-flow slowdown factors (a CongestionMap) and
//      a NetReport; the job re-runs with each transfer's bandwidth term
//      stretched by its factor.
//
// Both passes are pure functions of (config, seed), so congested runs stay
// bit-identical. FabricModel::Ideal bypasses all of this and reproduces the
// pre-fabric flat cost model exactly.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/contention.hpp"
#include "net/topology.hpp"
#include "topo/calibration.hpp"

namespace cbmpi::net {

enum class FabricModel {
  Ideal,    ///< flat per-pair cost model, no contention (pre-fabric behaviour)
  Flat,     ///< one crossbar switch; host up/downlinks contend, VF caps apply
  FatTree,  ///< k-ary fat-tree; hop-sensitive latency + full link contention
};

const char* to_string(FabricModel model);

struct FabricConfig {
  FabricModel model = FabricModel::Ideal;
  int arity = 4;            ///< fat-tree k (even); ignored by Ideal/Flat
  double link_bw_gbps = 0;  ///< per-link bandwidth; 0 = profile hca_link_bw
  int vf_limit = 0;         ///< VFs one host HCA schedules at full weight; 0 = unlimited
  int hosts = 0;            ///< fabric size; 0 = derived from the job's cluster

  bool enabled() const { return model != FabricModel::Ideal; }

  /// Parses "ideal" | "flat" | "fattree:<k>" (bare "fattree" keeps the
  /// default arity). Throws on anything else.
  static FabricConfig parse(const std::string& spec);
};

/// Routing context of one transfer, handed to HcaChannel cost queries when a
/// fabric is attached. Hosts are cluster-wide (physical) ids.
struct TransferCtx {
  int src_host = -1;
  int dst_host = -1;
  FlowKey key;
};

/// One recorded inter-host payload (record pass).
struct FlowRecord {
  FlowKey key;
  int src_host = -1;
  int dst_host = -1;
  Bytes bytes = 0;
  Micros start = 0.0;  ///< when injection begins (post overhead excluded)
  bool sriov = false;
};

/// Thread-safe append log; canonical order is imposed at settle time, so the
/// wall-clock interleaving of rank threads cannot leak into results.
class FlowLog {
 public:
  void record(const FlowRecord& flow) {
    const std::scoped_lock lock(mutex_);
    flows_.push_back(flow);
  }
  std::vector<FlowRecord> take() {
    const std::scoped_lock lock(mutex_);
    return std::move(flows_);
  }
  std::size_t size() const {
    const std::scoped_lock lock(mutex_);
    return flows_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<FlowRecord> flows_;
};

/// Immutable per-flow slowdown factors from the settle step. Unknown keys
/// (e.g. transfers that only exist in the apply pass) default to 1.0.
class CongestionMap {
 public:
  CongestionMap() = default;
  explicit CongestionMap(std::map<FlowKey, double> factors)
      : factors_(std::move(factors)) {}

  double factor(const FlowKey& key) const {
    const auto it = factors_.find(key);
    return it == factors_.end() ? 1.0 : it->second;
  }
  std::size_t size() const { return factors_.size(); }

 private:
  std::map<FlowKey, double> factors_;
};

/// Utilization of one link that carried traffic (report section).
struct LinkUtil {
  int link = -1;
  double peak = 0.0;
  double mean = 0.0;
};

/// Run-report v3 "net" section payload.
struct NetReport {
  bool enabled = false;
  FabricModel model = FabricModel::Ideal;
  int arity = 0;
  int hosts = 0;
  int switches = 0;
  int links = 0;
  std::uint64_t transfers = 0;            ///< recorded inter-host payloads
  std::uint64_t congested_transfers = 0;  ///< factor > 1
  double max_factor = 1.0;
  double max_peak_util = 0.0;
  double mean_util = 0.0;                     ///< over links that carried traffic
  std::vector<LinkUtil> link_utils;           ///< links with traffic, by id
  std::vector<std::uint64_t> hop_histogram;   ///< index = hop count
};

struct FabricSettle {
  CongestionMap congestion;
  NetReport report;
};

class Fabric {
 public:
  /// `vfs_per_host[h]` = container VFs provisioned on physical host h (>= 1
  /// for any host that runs ranks). Link bandwidth/latency defaults derive
  /// from the machine profile so an uncontended flat fabric reproduces the
  /// ideal model's inter-host numbers bit-identically.
  Fabric(const FabricConfig& config, const topo::MachineProfile& profile,
         std::vector<int> vfs_per_host);

  const Topology& topology() const { return topology_; }
  const FabricConfig& config() const { return config_; }

  int hops(int src_host, int dst_host) const {
    return topology_.hops(src_host, dst_host);
  }
  Micros path_latency(int src_host, int dst_host) const {
    return topology_.path_latency(src_host, dst_host);
  }

  /// SR-IOV VF weight of one host: 1.0 while the HCA schedules every
  /// provisioned VF at full weight, vf_limit / provisioned once the host
  /// over-commits its VF budget.
  double vf_share(int host) const;

  /// Hard rate cap of one flow: narrowest link on the route, scaled by both
  /// endpoints' VF shares and the SR-IOV derate for VM endpoints. The
  /// contention engine may grant less when links are shared.
  BytesPerMicro flow_rate_cap(int src_host, int dst_host, bool sriov) const;

  /// Settles one record pass: sorts the flows canonically, runs the
  /// contention engine, and folds the outcome into a CongestionMap plus the
  /// report section. Pure function of `flows`.
  FabricSettle settle(std::vector<FlowRecord> flows) const;

 private:
  FabricConfig config_;
  double sriov_derate_ = 1.0;
  Topology topology_;
  std::vector<int> vfs_per_host_;
  std::vector<double> link_caps_;
};

}  // namespace cbmpi::net
