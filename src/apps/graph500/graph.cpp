#include "apps/graph500/graph.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cbmpi::apps::graph500 {

DistGraph build_graph(mpi::Process& p, const EdgeListParams& params) {
  auto& comm = p.world();
  const int nranks = comm.size();
  const int me = comm.rank();

  DistGraph graph;
  graph.num_global_vertices = params.num_vertices();
  graph.nranks = nranks;
  graph.my_rank = me;

  // Generate this rank's slice of the global edge list.
  const std::uint64_t total = params.num_edges();
  const std::uint64_t per =
      (total + static_cast<std::uint64_t>(nranks) - 1) /
      static_cast<std::uint64_t>(nranks);
  const std::uint64_t first = std::min(per * static_cast<std::uint64_t>(me), total);
  const std::uint64_t last = std::min(first + per, total);
  const auto slice = kronecker_slice(params, first, last);
  // Generation cost: a few hash evaluations per edge.
  p.compute(static_cast<double>(slice.size()) * 8.0);

  // Route each direction of each edge to the owner of its source endpoint.
  auto owner = [&](std::uint64_t v) {
    return static_cast<int>(v % static_cast<std::uint64_t>(nranks));
  };

  std::vector<int> send_counts(static_cast<std::size_t>(nranks), 0);
  for (const auto& e : slice) {
    if (e.u == e.v) continue;  // drop self loops like the reference code
    send_counts[static_cast<std::size_t>(owner(e.u))] += 2;  // (u, v)
    send_counts[static_cast<std::size_t>(owner(e.v))] += 2;  // (v, u)
  }
  std::vector<int> send_displs(static_cast<std::size_t>(nranks), 0);
  for (int r = 1; r < nranks; ++r)
    send_displs[static_cast<std::size_t>(r)] =
        send_displs[static_cast<std::size_t>(r - 1)] +
        send_counts[static_cast<std::size_t>(r - 1)];

  std::vector<std::uint64_t> send_buf(
      static_cast<std::size_t>(send_displs.back() + send_counts.back()));
  {
    std::vector<int> cursor = send_displs;
    auto push = [&](std::uint64_t src, std::uint64_t dst) {
      auto& c = cursor[static_cast<std::size_t>(owner(src))];
      send_buf[static_cast<std::size_t>(c)] = src;
      send_buf[static_cast<std::size_t>(c + 1)] = dst;
      c += 2;
    };
    for (const auto& e : slice) {
      if (e.u == e.v) continue;
      push(e.u, e.v);
      push(e.v, e.u);
    }
  }

  std::vector<int> recv_counts(static_cast<std::size_t>(nranks), 0);
  comm.alltoall(std::span<const int>(send_counts), std::span<int>(recv_counts));

  std::vector<int> recv_displs(static_cast<std::size_t>(nranks), 0);
  for (int r = 1; r < nranks; ++r)
    recv_displs[static_cast<std::size_t>(r)] =
        recv_displs[static_cast<std::size_t>(r - 1)] +
        recv_counts[static_cast<std::size_t>(r - 1)];
  std::vector<std::uint64_t> recv_buf(
      static_cast<std::size_t>(recv_displs.back() + recv_counts.back()));

  comm.alltoallv(std::span<const std::uint64_t>(send_buf),
                 std::span<const int>(send_counts), std::span<const int>(send_displs),
                 std::span<std::uint64_t>(recv_buf), std::span<const int>(recv_counts),
                 std::span<const int>(recv_displs));

  // Build the local CSR: recv_buf holds (src, dst) pairs with src owned here.
  const std::uint64_t nverts = params.num_vertices();
  const std::uint64_t local_n =
      (nverts - static_cast<std::uint64_t>(me) +
       static_cast<std::uint64_t>(nranks) - 1) /
      static_cast<std::uint64_t>(nranks);

  std::vector<std::uint64_t> degree(local_n, 0);
  for (std::size_t i = 0; i + 1 < recv_buf.size(); i += 2)
    ++degree[recv_buf[i] / static_cast<std::uint64_t>(nranks)];

  graph.row_ptr.assign(local_n + 1, 0);
  for (std::uint64_t v = 0; v < local_n; ++v)
    graph.row_ptr[v + 1] = graph.row_ptr[v] + degree[v];
  graph.adjacency.resize(graph.row_ptr.back());

  std::vector<std::uint64_t> cursor(graph.row_ptr.begin(), graph.row_ptr.end() - 1);
  for (std::size_t i = 0; i + 1 < recv_buf.size(); i += 2) {
    const std::uint64_t local = recv_buf[i] / static_cast<std::uint64_t>(nranks);
    graph.adjacency[cursor[local]++] = recv_buf[i + 1];
  }
  // CSR construction cost: two passes over the received pairs.
  p.compute(static_cast<double>(recv_buf.size()) * 2.0);

  return graph;
}

}  // namespace cbmpi::apps::graph500
