#include "sched/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/topology.hpp"

namespace cbmpi::sched {

namespace {
constexpr Micros kNever = std::numeric_limits<Micros>::infinity();

/// Pairwise host hop distances under the cluster's fabric. TopologyAware
/// needs a matrix even when the contention model is off, so an unset config
/// assumes the smallest fat-tree holding the cluster — the shape a locality
/// placer should be optimizing for anyway.
std::vector<std::vector<int>> host_hop_matrix(const SchedulerConfig& config) {
  const int hosts = config.cluster_hosts;
  if (hosts <= 0) return {};  // ctor body rejects this config right after
  net::Topology topo;
  if (config.fabric.model == net::FabricModel::Flat) {
    topo = net::Topology::flat(hosts, 1.0, 0.0, 0.0);
  } else {
    int arity = net::Topology::min_arity_for(hosts);
    if (config.fabric.model == net::FabricModel::FatTree) {
      CBMPI_REQUIRE(config.fabric.arity >= arity, "fat-tree arity ",
                    config.fabric.arity, " holds fewer than ", hosts,
                    " hosts; need at least ", arity);
      arity = config.fabric.arity;
    }
    topo = net::Topology::fattree(arity, hosts, 1.0, 0.0, 0.0);
  }
  std::vector<std::vector<int>> hops(static_cast<std::size_t>(hosts),
                                     std::vector<int>(static_cast<std::size_t>(hosts), 0));
  for (int a = 0; a < hosts; ++a)
    for (int b = 0; b < hosts; ++b)
      hops[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
          topo.hops(a, b);
  return hops;
}

std::unique_ptr<Placer> build_placer(const SchedulerConfig& config) {
  if (config.policy != PlacementPolicy::TopologyAware)
    return make_placer(config.policy, config.seed);
  const auto hops = host_hop_matrix(config);
  return make_placer(config.policy, config.seed, &hops);
}

}  // namespace

Scheduler::Scheduler(SchedulerConfig config)
    : config_(config),
      cluster_(config.cluster_hosts, config.host_shape),
      state_(cluster_),
      placer_(build_placer(config)),
      host_crashes_(static_cast<std::size_t>(config.cluster_hosts), 0) {
  CBMPI_REQUIRE(config.cluster_hosts > 0, "scheduler needs at least one host");
  CBMPI_REQUIRE(config.max_restarts >= 0, "max_restarts must be >= 0");
  CBMPI_REQUIRE(config.requeue_backoff >= 0.0, "requeue_backoff must be >= 0");
  CBMPI_REQUIRE(config.requeue_backoff_factor >= 1.0,
                "requeue_backoff_factor must be >= 1");
  CBMPI_REQUIRE(config.blacklist_threshold >= 0,
                "blacklist_threshold must be >= 0 (0 = never blacklist)");
  CBMPI_REQUIRE(config.checkpoint_interval >= 0.0,
                "checkpoint_interval must be >= 0 (0 = off)");
  CBMPI_REQUIRE(config.migrate_cost.cost_margin >= 0.0,
                "migrate cost_margin must be >= 0");
  CBMPI_REQUIRE(config.migrate_cost.precopy_rounds >= 0,
                "precopy_rounds must be >= 0");
  CBMPI_REQUIRE(config.migrate_cost.dirty_rate >= 0.0 &&
                    config.migrate_cost.dirty_rate <= 1.0,
                "dirty_rate must be in [0, 1]");
  runner_ = [](const mpi::JobConfig& job_config, const JobSpec& job) {
    return mpi::run_job(job_config, mpi::JobBodyRegistry::instance().make(
                                        job.body, job.params));
  };
  if (config_.migrate_policy != migrate::MigrationPolicy::Off) {
    rebalancer_ = std::make_unique<ElasticRebalancer>(config_.migrate_policy,
                                                      config_.migrate_cost);
  }
  migrate_runner_ = [](const mpi::JobConfig& job_config, const JobSpec& job,
                       const migrate::MigrationPlan& plan) {
    return migrate::Engine::run(job_config,
                                mpi::JobBodyRegistry::instance().make(
                                    job.body, job.params),
                                plan);
  };
}

int Scheduler::submit(JobSpec spec) {
  CBMPI_REQUIRE(!ran_, "scheduler already ran; submit before run()");
  CBMPI_REQUIRE(spec.ranks > 0, "job needs at least one rank");
  CBMPI_REQUIRE(spec.ranks <= state_.total_cores(), "job '", spec.name,
                "' needs ", spec.ranks, " cores, the cluster has ",
                state_.total_cores());
  CBMPI_REQUIRE(spec.ranks_per_container >= 0,
                "ranks_per_container must be >= 0 (0 = native)");
  CBMPI_REQUIRE(spec.submit_time >= 0.0, "submit_time must be >= 0");
  CBMPI_REQUIRE(spec.est_runtime > 0.0, "est_runtime must be positive");
  if (!spec.traffic)
    mpi::JobBodyRegistry::instance().info(spec.body);  // fails fast if unknown
  spec.id = next_id_++;
  if (spec.name.empty()) spec.name = "job" + std::to_string(spec.id);
  pending_.push_back(std::move(spec));
  return pending_.back().id;
}

bool Scheduler::try_start(const JobSpec& job, Micros now, bool backfilled) {
  const auto placement = placer_->place(job, state_);
  if (!placement) return false;

  ScheduledJob record;
  record.spec = job;
  record.backfilled = backfilled;
  record.start_time = now;
  for (const auto& assignment : placement->hosts) {
    const auto claimed = state_.claim(
        assignment.host, static_cast<int>(assignment.ranks.size()), job.id);
    // Placers assign the lowest free cores per host, which is exactly what
    // claim() hands out; a mismatch means the placer raced its own state.
    CBMPI_REQUIRE(claimed == assignment.cores, "placer/state core mismatch on host ",
                  assignment.host, " for job ", job.id);
    record.hosts.push_back(assignment.host);
  }
  record.placement = placement_stats(job, *placement, effective_traffic(job));

  auto job_config = make_job_config(job, *placement, config_.host_shape);
  job_config.tuning = config_.tuning;
  job_config.profile = config_.profile;
  job_config.observe = config_.observe;
  // Recovery plumbing: checkpoint cadence (spec override beats the cluster
  // default), the snapshot to resume from, and the job-local -> physical host
  // map that keeps one flaky host flaky for *every* job placed on it.
  job_config.checkpoint_interval = job.checkpoint_interval >= 0.0
                                       ? job.checkpoint_interval
                                       : config_.checkpoint_interval;
  job_config.restore = job.restore;
  job_config.physical_hosts.assign(record.hosts.begin(), record.hosts.end());
  // Every job sees the whole cluster's fabric, not just the hosts it spans:
  // hop counts and link shares depend on where the placement landed.
  job_config.fabric = config_.fabric;
  if (job_config.fabric.enabled() && job_config.fabric.hosts == 0)
    job_config.fabric.hosts = config_.cluster_hosts;
  if (job_config.faults.host_crash_prob > 0.0 &&
      job_config.faults.host_fault_seed == 0)
    job_config.faults.host_fault_seed = config_.seed;
  // Attempt 0 keeps the historical seed formula (schedules stay byte-stable
  // across this change); retries re-roll so the same crash cannot recur at
  // the identical virtual instant forever.
  std::uint64_t seed =
      mix64(config_.seed ^ mix64(static_cast<std::uint64_t>(job.id) * 2 + 1));
  if (job.attempt > 0)
    seed = mix64(seed ^ mix64(static_cast<std::uint64_t>(job.attempt)));
  job_config.seed = seed;

  // Elastic rebalancing: with a migration policy on, ask the rebalancer
  // whether this launch should move a container mid-run. Claims for the
  // destination cores go under the job's id, so the one release(job.id) at
  // completion frees source and destination alike.
  std::optional<migrate::MigrationPlan> migration;
  if (rebalancer_) {
    auto decision = rebalancer_->propose(job, *placement, job_config, state_,
                                         host_crashes_, config_.host_shape);
    if (decision.proposed) {
      ++migrations_proposed_;
      if (decision.accepted) {
        const auto claimed = state_.claim(
            decision.plan.move.dst_phys_host,
            static_cast<int>(decision.plan.move.dst_cores.size()), job.id);
        CBMPI_REQUIRE(claimed == decision.plan.move.dst_cores,
                      "rebalancer/state core mismatch on host ",
                      decision.plan.move.dst_phys_host, " for job ", job.id);
        migration = std::move(decision.plan);
      } else {
        ++migrations_rejected_;
      }
    }
  }

  record.attempt = job.attempt;
  record.restored_progress = job.restore ? job.restore->progress_us : 0.0;
  try {
    record.result = migration ? migrate_runner_(job_config, job, *migration)
                              : runner_(job_config, job);
    record.end_time = now + record.result.job_time;
    const auto& mig = record.result.migration;
    migrations_executed_ += mig.executed;
    migration_pause_us_ += mig.total_pause_us;
    if (mig.executed > 0) {
      migration_win_us_ += mig.predicted_win_us;
      migration_cost_us_ += mig.predicted_cost_us;
    }
    checkpoints_committed_ += static_cast<int>(record.result.checkpoints.size());
    completed_work_us_ += static_cast<double>(job.ranks) *
                          (record.restored_progress + record.result.job_time);
  } catch (const mpi::JobCrashedError& e) {
    handle_crash(record, job, now, e.info(), e.checkpoint(),
                 e.checkpoints_committed());
  } catch (const faults::CrashedError& e) {
    // Canned runners (test seams) may throw the base crash type directly;
    // carry the prior attempt's snapshot forward unchanged.
    handle_crash(record, job, now, e.info(), job.restore, 0);
  }

  running_.push_back({job.id, record.end_time, job.ranks});
  done_.push_back(std::move(record));
  return true;
}

void Scheduler::handle_crash(ScheduledJob& record, const JobSpec& job,
                             Micros now, const faults::CrashInfo& info,
                             std::shared_ptr<const mpi::CheckpointData> checkpoint,
                             int checkpoints_committed) {
  record.outcome = JobOutcome::Crashed;
  record.crash = info;
  record.end_time = now + info.at;  // cores were held until the crash
  ++crashes_;
  checkpoints_committed_ += checkpoints_committed;
  // Work thrown away: everything past the attempt's last committed snapshot
  // (the whole attempt when none committed), across all its ranks.
  lost_work_us_ += static_cast<double>(job.ranks) *
                   std::max(0.0, info.at - info.last_checkpoint);

  if (info.host >= 0 && info.host < state_.num_hosts()) {
    auto& crash_count = host_crashes_[static_cast<std::size_t>(info.host)];
    ++crash_count;
    if (config_.blacklist_threshold > 0 &&
        crash_count >= config_.blacklist_threshold &&
        !state_.is_blacklisted(info.host)) {
      state_.blacklist(info.host);
      blacklist_events_.push_back({info.host, record.end_time, crash_count});
    }
  }

  if (job.attempt < config_.max_restarts) {
    JobSpec retry = job;
    retry.attempt = job.attempt + 1;
    if (checkpoint) retry.restore = std::move(checkpoint);
    const Micros backoff =
        config_.requeue_backoff *
        std::pow(config_.requeue_backoff_factor, static_cast<double>(job.attempt));
    retry.submit_time = record.end_time + backoff;
    ++requeues_;
    if (retry.restore) ++restarts_from_checkpoint_;
    // Keep pending_ sorted by the same (submit_time, priority) order run()
    // established; upper_bound preserves FIFO among equal keys.
    const auto pos = std::upper_bound(
        pending_.begin(), pending_.end(), retry,
        [](const JobSpec& a, const JobSpec& b) {
          if (a.submit_time != b.submit_time)
            return a.submit_time < b.submit_time;
          return a.priority > b.priority;
        });
    pending_.insert(pos, std::move(retry));
  } else {
    record.outcome = JobOutcome::Failed;  // crash details stay in record.crash
    ++jobs_failed_;
  }
}

void Scheduler::fail_unplaceable(JobSpec job, Micros now) {
  ScheduledJob record;
  record.attempt = job.attempt;
  record.restored_progress = job.restore ? job.restore->progress_us : 0.0;
  record.outcome = JobOutcome::Failed;
  record.start_time = now;
  record.end_time = now;
  record.spec = std::move(job);
  ++jobs_failed_;
  done_.push_back(std::move(record));
}

void Scheduler::reservation_for(int cores_needed, Micros now, Micros* shadow_time,
                                int* spare_cores) const {
  int free = state_.total_free();
  if (free >= cores_needed) {
    *shadow_time = now;
    *spare_cores = free - cores_needed;
    return;
  }
  auto ends = running_;
  std::sort(ends.begin(), ends.end(), [](const Running& a, const Running& b) {
    return a.end_time != b.end_time ? a.end_time < b.end_time
                                    : a.job_id < b.job_id;
  });
  for (const auto& run : ends) {
    free += run.cores;
    if (free >= cores_needed) {
      *shadow_time = run.end_time;
      *spare_cores = free - cores_needed;
      return;
    }
  }
  CBMPI_REQUIRE(false, "queue head needs ", cores_needed,
                " cores but the cluster cannot ever free them");
}

const std::vector<ScheduledJob>& Scheduler::run() {
  CBMPI_REQUIRE(!ran_, "scheduler can only run once");
  ran_ = true;
  if (pending_.empty()) return done_;

  // FIFO order: submit time, then priority (higher first), then submission
  // order (stable sort keeps it).
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const JobSpec& a, const JobSpec& b) {
                     if (a.submit_time != b.submit_time)
                       return a.submit_time < b.submit_time;
                     return a.priority > b.priority;
                   });

  const Micros first_submit = pending_.front().submit_time;
  Micros now = first_submit;

  while (!pending_.empty() || !running_.empty()) {
    // --- placement pass at `now` -----------------------------------------
    // try_start may requeue a crashed job into pending_, so every candidate
    // is *removed* from the queue before the attempt and re-inserted only if
    // placement failed (no references into pending_ survive a try_start).
    for (;;) {
      std::size_t head = 0;
      while (head < pending_.size() && pending_[head].submit_time > now) ++head;
      if (head == pending_.size()) break;

      // A blacklist may have shrunk the cluster under a queued job; fail it
      // now instead of blocking the queue forever.
      if (pending_[head].ranks > state_.placeable_cores()) {
        JobSpec job = std::move(pending_[head]);
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(head));
        fail_unplaceable(std::move(job), now);
        continue;
      }

      {
        JobSpec job = std::move(pending_[head]);
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(head));
        if (try_start(job, now, /*backfilled=*/false)) continue;
        pending_.insert(pending_.begin() + static_cast<std::ptrdiff_t>(head),
                        std::move(job));
      }

      // Head is blocked: EASY backfill. Reserve the head's start (shadow
      // time); later jobs may jump the queue only if they are predicted to
      // finish before the reservation or fit in cores the head will not
      // need — so the head's start is never pushed back by a backfill
      // (given honest runtime estimates).
      if (config_.backfill) {
        Micros shadow = kNever;
        int spare = 0;
        reservation_for(pending_[head].ranks, now, &shadow, &spare);
        for (std::size_t i = head + 1; i < pending_.size();) {
          if (pending_[i].submit_time > now) {
            ++i;
            continue;
          }
          const bool ends_before_shadow =
              now + pending_[i].est_runtime <= shadow;
          const bool fits_spare = pending_[i].ranks <= spare;
          if (!ends_before_shadow && !fits_spare) {
            ++i;
            continue;
          }
          JobSpec candidate = std::move(pending_[i]);
          pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
          const int candidate_ranks = candidate.ranks;
          if (try_start(candidate, now, /*backfilled=*/true)) {
            if (!ends_before_shadow) spare -= candidate_ranks;
            continue;  // i now indexes the next (shifted) element
          }
          pending_.insert(pending_.begin() + static_cast<std::ptrdiff_t>(i),
                          std::move(candidate));
          ++i;
        }
      }
      break;  // head stays blocked until capacity frees up
    }

    // --- advance virtual time to the next event ---------------------------
    Micros next = kNever;
    for (const auto& run : running_) next = std::min(next, run.end_time);
    for (const auto& job : pending_)
      if (job.submit_time > now) next = std::min(next, job.submit_time);
    if (pending_.empty() && running_.empty()) break;
    CBMPI_REQUIRE(next < kNever, "scheduler stuck: jobs queued but no event pending");
    now = std::max(now, next);

    // --- completions at or before `now` -----------------------------------
    for (std::size_t i = 0; i < running_.size();) {
      if (running_[i].end_time <= now) {
        state_.release(running_[i].job_id);
        running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }

  // Completion order, deterministic tie-break by id.
  std::sort(done_.begin(), done_.end(),
            [](const ScheduledJob& a, const ScheduledJob& b) {
              return a.end_time != b.end_time ? a.end_time < b.end_time
                                              : a.spec.id < b.spec.id;
            });

  // --- cluster metrics -----------------------------------------------------
  metrics_ = ClusterMetrics{};
  Micros last_end = first_submit;
  double busy_core_time = 0.0;
  for (const auto& job : done_) {
    last_end = std::max(last_end, job.end_time);
    busy_core_time += static_cast<double>(job.spec.ranks) * job.runtime();
    metrics_.mean_queue_wait += job.queue_wait();
    metrics_.max_queue_wait = std::max(metrics_.max_queue_wait, job.queue_wait());
    if (job.backfilled) ++metrics_.backfilled_jobs;
    metrics_.intra_host_pairs += job.placement.intra_host_pairs;
    metrics_.inter_host_pairs += job.placement.inter_host_pairs;
    metrics_.shm_ops += job.result.profile.total.channel_ops(fabric::ChannelKind::Shm);
    metrics_.cma_ops += job.result.profile.total.channel_ops(fabric::ChannelKind::Cma);
    metrics_.hca_ops += job.result.profile.total.channel_ops(fabric::ChannelKind::Hca);
  }
  metrics_.makespan = last_end - first_submit;
  if (!done_.empty())
    metrics_.mean_queue_wait /= static_cast<double>(done_.size());
  if (metrics_.makespan > 0.0)
    metrics_.utilization =
        busy_core_time /
        (static_cast<double>(state_.total_cores()) * metrics_.makespan);

  // Recovery aggregates accumulated incrementally during the run.
  metrics_.crashes = crashes_;
  metrics_.requeues = requeues_;
  metrics_.restarts_from_checkpoint = restarts_from_checkpoint_;
  metrics_.checkpoints = checkpoints_committed_;
  metrics_.jobs_failed = jobs_failed_;
  metrics_.blacklisted_hosts = state_.blacklisted_hosts();
  metrics_.lost_work_us = lost_work_us_;
  metrics_.completed_work_us = completed_work_us_;
  metrics_.migrations_proposed = migrations_proposed_;
  metrics_.migrations_rejected = migrations_rejected_;
  metrics_.migrations_executed = migrations_executed_;
  metrics_.migration_pause_us = migration_pause_us_;
  metrics_.migration_win_us = migration_win_us_;
  metrics_.migration_cost_us = migration_cost_us_;
  return done_;
}

void Scheduler::export_metrics(obs::MetricsRegistry& registry) const {
  registry.gauge("sched.makespan_us").set(metrics_.makespan);
  registry.gauge("sched.utilization").set(metrics_.utilization);
  registry.gauge("sched.mean_queue_wait_us").set(metrics_.mean_queue_wait);
  registry.gauge("sched.max_queue_wait_us").set(metrics_.max_queue_wait);
  registry.counter("sched.jobs").add(done_.size());
  registry.counter("sched.backfilled_jobs")
      .add(static_cast<std::uint64_t>(metrics_.backfilled_jobs));
  registry.counter("sched.channel.shm.ops").add(metrics_.shm_ops);
  registry.counter("sched.channel.cma.ops").add(metrics_.cma_ops);
  registry.counter("sched.channel.hca.ops").add(metrics_.hca_ops);
  registry.counter("sched.recovery.crashes")
      .add(static_cast<std::uint64_t>(metrics_.crashes));
  registry.counter("sched.recovery.requeues")
      .add(static_cast<std::uint64_t>(metrics_.requeues));
  registry.counter("sched.recovery.restarts_from_checkpoint")
      .add(static_cast<std::uint64_t>(metrics_.restarts_from_checkpoint));
  registry.counter("sched.recovery.checkpoints")
      .add(static_cast<std::uint64_t>(metrics_.checkpoints));
  registry.counter("sched.recovery.jobs_failed")
      .add(static_cast<std::uint64_t>(metrics_.jobs_failed));
  registry.counter("sched.recovery.blacklisted_hosts")
      .add(static_cast<std::uint64_t>(metrics_.blacklisted_hosts));
  registry.gauge("sched.recovery.lost_work_us").set(metrics_.lost_work_us);
  registry.gauge("sched.recovery.completed_work_us")
      .set(metrics_.completed_work_us);
  // Migration metrics only exist when the feature is on, so off-policy
  // metric dumps stay byte-identical to a scheduler without it.
  if (config_.migrate_policy != migrate::MigrationPolicy::Off) {
    registry.counter("sched.migration.proposed")
        .add(static_cast<std::uint64_t>(metrics_.migrations_proposed));
    registry.counter("sched.migration.rejected")
        .add(static_cast<std::uint64_t>(metrics_.migrations_rejected));
    registry.counter("sched.migration.executed")
        .add(static_cast<std::uint64_t>(metrics_.migrations_executed));
    registry.gauge("sched.migration.pause_us").set(metrics_.migration_pause_us);
    registry.gauge("sched.migration.predicted_win_us")
        .set(metrics_.migration_win_us);
    registry.gauge("sched.migration.predicted_cost_us")
        .set(metrics_.migration_cost_us);
  }
  auto& waits = registry.histogram("sched.queue_wait_us");
  auto& runtimes = registry.histogram("sched.job_runtime_us");
  for (const auto& job : done_) {
    waits.observe(static_cast<std::uint64_t>(job.queue_wait()));
    runtimes.observe(static_cast<std::uint64_t>(job.runtime()));
  }
}

}  // namespace cbmpi::sched
