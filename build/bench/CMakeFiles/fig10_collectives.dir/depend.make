# Empty dependencies file for fig10_collectives.
# This may be replaced when dependencies are built.
