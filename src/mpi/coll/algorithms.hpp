// Collective algorithm primitives (Communicator member templates).
//
// Every `*_over` primitive runs one concrete algorithm over an arbitrary
// sorted list of communicator ranks — the same code serves the flat path
// (list = all ranks) and the phases of the two-level hierarchy (list = one
// locality group, or the group leaders). The caller passes the engine-chosen
// coll::Algo; when that algorithm's structural preconditions do not hold
// (power-of-two list, at least one element per rank, zero-identity reduce
// op), the primitive downgrades deterministically — identically on every
// rank, because the decision depends only on values all ranks share — and
// returns the algorithm that actually ran.
//
// Tag budget: each primitive may use [tag, tag+4) (one kSubTags stride-4
// slice); composite algorithms document their exact usage inline.
//
// This header is included at the bottom of mpi/communicator.hpp and must not
// be included directly anywhere else.
#pragma once

#include "mpi/communicator.hpp"

namespace cbmpi::mpi {

// ---- broadcast ------------------------------------------------------------

// Binomial | FlatTree | VanDeGeijn. VanDeGeijn (uses tags [tag, tag+2))
// needs one payload element per rank; downgrades to Binomial otherwise.
template <typename T>
coll::Algo Communicator::bcast_over(const std::vector<int>& list, std::span<T> data,
                                    int root_pos, int tag, coll::Algo algo) {
  const int m = static_cast<int>(list.size());
  if (m <= 1) return algo;
  if (algo == coll::Algo::VanDeGeijn && data.size() < static_cast<std::size_t>(m))
    algo = coll::Algo::Binomial;

  if (algo == coll::Algo::VanDeGeijn) {
    bcast_vandegeijn_over(list, data, root_pos, tag);
    return algo;
  }

  const int pos = position_in(list);
  if (algo == coll::Algo::FlatTree) {
    if (pos == root_pos) {
      for (int q = 0; q < m; ++q) {
        if (q == root_pos) continue;
        raw_send(std::span<const T>(data.data(), data.size()),
                 list[static_cast<std::size_t>(q)], tag);
      }
    } else {
      raw_recv(data, list[static_cast<std::size_t>(root_pos)], tag);
    }
    return algo;
  }

  // Binomial tree on virtual ranks rooted at 0.
  const int vrank = (pos - root_pos + m) % m;
  auto real = [&](int v) { return list[static_cast<std::size_t>((v + root_pos) % m)]; };

  int mask = 1;
  while (mask < m) {
    if (vrank & mask) {
      raw_recv(data, real(vrank - mask), tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < m)
      raw_send(std::span<const T>(data.data(), data.size()), real(vrank + mask), tag);
    mask >>= 1;
  }
  return coll::Algo::Binomial;
}

// ---- reduce ---------------------------------------------------------------

// Binomial | FlatTree; commutative ops. Only the root's `out` is written.
template <typename T>
coll::Algo Communicator::reduce_over(const std::vector<int>& list,
                                     std::span<const T> in, std::span<T> out,
                                     ReduceOp op, int root_pos, int tag,
                                     coll::Algo algo) {
  const int m = static_cast<int>(list.size());
  const int pos = position_in(list);

  if (algo == coll::Algo::FlatTree && m > 1) {
    if (pos == root_pos) {
      std::vector<T> acc(in.begin(), in.end());
      std::vector<T> incoming(in.size());
      // Fixed list order keeps the combination order identical across runs.
      for (int q = 0; q < m; ++q) {
        if (q == root_pos) continue;
        raw_recv(std::span<T>(incoming), list[static_cast<std::size_t>(q)], tag);
        apply_reduce<T>(op, incoming, acc);
      }
      CBMPI_REQUIRE(out.size() >= in.size(), "reduce output buffer too small");
      std::copy(acc.begin(), acc.end(), out.begin());
    } else {
      raw_send(in, list[static_cast<std::size_t>(root_pos)], tag);
    }
    return algo;
  }

  const int vrank = (pos - root_pos + m) % m;
  std::vector<T> acc(in.begin(), in.end());
  if (m > 1) {
    auto real = [&](int v) { return list[static_cast<std::size_t>((v + root_pos) % m)]; };
    std::vector<T> incoming(in.size());

    int mask = 1;
    while (mask < m) {
      if (vrank & mask) {
        raw_send(std::span<const T>(acc), real(vrank - mask), tag);
        break;
      }
      const int child = vrank + mask;
      if (child < m) {
        raw_recv(std::span<T>(incoming), real(child), tag);
        apply_reduce<T>(op, incoming, acc);
      }
      mask <<= 1;
    }
  }
  if (vrank == 0) {
    CBMPI_REQUIRE(out.size() >= in.size(), "reduce output buffer too small");
    std::copy(acc.begin(), acc.end(), out.begin());
  }
  return coll::Algo::Binomial;
}

// ---- allreduce ------------------------------------------------------------

// RecursiveDoubling (power-of-two lists) | Rabenseifner (power-of-two lists,
// zero-identity ops; tags [tag, tag+2)) | ReduceBcast (any list; tags
// [tag, tag+2), the bcast leg re-enters the engine for its own algorithm).
template <typename T>
coll::Algo Communicator::allreduce_over(const std::vector<int>& list,
                                        std::span<const T> in, std::span<T> out,
                                        ReduceOp op, int tag, coll::Algo algo) {
  const int m = static_cast<int>(list.size());
  CBMPI_REQUIRE(out.size() >= in.size(), "allreduce output buffer too small");
  if (m == 1) {
    std::copy(in.begin(), in.end(), out.begin());
    return algo;
  }
  const bool pow2 = detail::is_power_of_two(static_cast<std::size_t>(m));
  // Rabenseifner pads the vector with value-initialized elements, which is
  // only an identity for zero-identity operators.
  const bool zero_identity = op == ReduceOp::Sum || op == ReduceOp::BitOr ||
                             op == ReduceOp::LogicalOr;
  if (algo == coll::Algo::Rabenseifner && !(pow2 && zero_identity))
    algo = pow2 ? coll::Algo::RecursiveDoubling : coll::Algo::ReduceBcast;
  if (algo == coll::Algo::RecursiveDoubling && !pow2)
    algo = coll::Algo::ReduceBcast;

  if (algo == coll::Algo::Rabenseifner) {
    allreduce_rabenseifner_over(list, in, out, op, tag);
    return algo;
  }
  if (algo == coll::Algo::RecursiveDoubling) {
    const int pos = position_in(list);
    std::vector<T> acc(in.begin(), in.end());
    std::vector<T> incoming(in.size());
    for (int mask = 1; mask < m; mask <<= 1) {
      const int partner = list[static_cast<std::size_t>(pos ^ mask)];
      raw_sendrecv(std::span<const T>(acc), partner, std::span<T>(incoming), partner,
                   tag);
      apply_reduce<T>(op, incoming, acc);
    }
    std::copy(acc.begin(), acc.end(), out.begin());
    return algo;
  }
  reduce_over(list, in, out, op, 0, tag, coll::Algo::Binomial);
  bcast_over(list, out.subspan(0, in.size()), 0, tag + 1,
             pick(coll::Coll::Bcast, in.size() * sizeof(T), m));
  return coll::Algo::ReduceBcast;
}

// ---- allgather ------------------------------------------------------------

// Ring | GatherBcast (linear gather to the list head + binomial bcast of the
// full buffer; uses tags [tag, tag+2)).
template <typename T>
coll::Algo Communicator::allgather_over(const std::vector<int>& list,
                                        std::span<const T> mine, std::span<T> all,
                                        int tag, coll::Algo algo) {
  const int m = static_cast<int>(list.size());
  const std::size_t block = mine.size();
  CBMPI_REQUIRE(all.size() >= block * static_cast<std::size_t>(m),
                "allgather output buffer too small");
  const int pos = position_in(list);
  T* const my_slot = all.data() + block * static_cast<std::size_t>(pos);
  if (my_slot != mine.data()) std::copy(mine.begin(), mine.end(), my_slot);
  if (m == 1) return algo;

  if (algo == coll::Algo::GatherBcast) {
    if (pos == 0) {
      for (int q = 1; q < m; ++q) {
        raw_recv(std::span<T>(all.data() + block * static_cast<std::size_t>(q), block),
                 list[static_cast<std::size_t>(q)], tag);
      }
    } else {
      raw_send(mine, list[0], tag);
    }
    bcast_over(list, all.subspan(0, block * static_cast<std::size_t>(m)), 0, tag + 1,
               coll::Algo::Binomial);
    return algo;
  }

  // Ring: in step s we forward the block received in step s-1. Per-sender
  // FIFO matching makes one tag safe for all steps.
  const int right = list[static_cast<std::size_t>((pos + 1) % m)];
  const int left = list[static_cast<std::size_t>((pos - 1 + m) % m)];
  for (int s = 0; s < m - 1; ++s) {
    const std::size_t send_pos = static_cast<std::size_t>((pos - s + m) % m);
    const std::size_t recv_pos = static_cast<std::size_t>((pos - s - 1 + m) % m);
    raw_sendrecv(std::span<const T>(all.data() + block * send_pos, block), right,
                 std::span<T>(all.data() + block * recv_pos, block), left, tag);
  }
  return coll::Algo::Ring;
}

template <typename T>
void Communicator::allgatherv_over(const std::vector<int>& list,
                                   std::span<const T> mine, std::span<T> all,
                                   std::span<const int> counts,
                                   std::span<const int> displs, int tag) {
  const int m = static_cast<int>(list.size());
  const int pos = position_in(list);
  CBMPI_REQUIRE(counts.size() == static_cast<std::size_t>(m) &&
                    displs.size() == static_cast<std::size_t>(m),
                "allgatherv counts/displs must have one entry per position");
  CBMPI_REQUIRE(mine.size() == static_cast<std::size_t>(counts[static_cast<std::size_t>(pos)]),
                "allgatherv input size mismatch");
  T* const my_slot = all.data() + static_cast<std::size_t>(displs[static_cast<std::size_t>(pos)]);
  if (my_slot != mine.data()) std::copy(mine.begin(), mine.end(), my_slot);
  if (m == 1) return;

  const int right = list[static_cast<std::size_t>((pos + 1) % m)];
  const int left = list[static_cast<std::size_t>((pos - 1 + m) % m)];
  for (int s = 0; s < m - 1; ++s) {
    const auto send_pos = static_cast<std::size_t>((pos - s + m) % m);
    const auto recv_pos = static_cast<std::size_t>((pos - s - 1 + m) % m);
    raw_sendrecv(std::span<const T>(all.data() + static_cast<std::size_t>(displs[send_pos]),
                                    static_cast<std::size_t>(counts[send_pos])),
                 right,
                 std::span<T>(all.data() + static_cast<std::size_t>(displs[recv_pos]),
                              static_cast<std::size_t>(counts[recv_pos])),
                 left, tag);
  }
}

template <typename T>
void Communicator::bcast_vandegeijn_over(const std::vector<int>& list,
                                         std::span<T> data, int root_pos, int tag) {
  const int m = static_cast<int>(list.size());
  const int pos = position_in(list);
  const std::size_t n = data.size();
  // Block partition of the payload by position.
  std::vector<int> counts(static_cast<std::size_t>(m));
  std::vector<int> displs(static_cast<std::size_t>(m));
  const std::size_t base = n / static_cast<std::size_t>(m);
  const std::size_t rem = n % static_cast<std::size_t>(m);
  std::size_t offset = 0;
  for (int q = 0; q < m; ++q) {
    const std::size_t c = base + (static_cast<std::size_t>(q) < rem ? 1 : 0);
    counts[static_cast<std::size_t>(q)] = static_cast<int>(c);
    displs[static_cast<std::size_t>(q)] = static_cast<int>(offset);
    offset += c;
  }
  // Scatter phase (linear from the root).
  if (pos == root_pos) {
    for (int q = 0; q < m; ++q) {
      if (q == root_pos) continue;
      raw_send(std::span<const T>(data.data() + static_cast<std::size_t>(
                                                    displs[static_cast<std::size_t>(q)]),
                                  static_cast<std::size_t>(counts[static_cast<std::size_t>(q)])),
               list[static_cast<std::size_t>(q)], tag);
    }
  } else {
    raw_recv(std::span<T>(data.data() + static_cast<std::size_t>(
                                            displs[static_cast<std::size_t>(pos)]),
                          static_cast<std::size_t>(counts[static_cast<std::size_t>(pos)])),
             list[static_cast<std::size_t>(root_pos)], tag);
  }
  // Ring allgather of the blocks completes the broadcast.
  allgatherv_over(list,
                  std::span<const T>(data.data() + static_cast<std::size_t>(
                                                       displs[static_cast<std::size_t>(pos)]),
                                     static_cast<std::size_t>(counts[static_cast<std::size_t>(pos)])),
                  data, counts, displs, tag + 1);
}

template <typename T>
void Communicator::reduce_scatter_halving_over(const std::vector<int>& list,
                                               std::span<const T> in,
                                               std::span<T> block_out, ReduceOp op,
                                               int tag) {
  const int m = static_cast<int>(list.size());
  CBMPI_REQUIRE(detail::is_power_of_two(static_cast<std::size_t>(m)),
                "recursive halving requires a power-of-two list");
  const std::size_t block = in.size() / static_cast<std::size_t>(m);
  CBMPI_REQUIRE(in.size() == block * static_cast<std::size_t>(m) &&
                    block_out.size() >= block,
                "reduce_scatter buffer size mismatch");
  const int pos = position_in(list);

  std::vector<T> acc(in.begin(), in.end());
  std::vector<T> incoming(in.size() / 2 + 1);
  std::size_t start = 0;        // in blocks
  std::size_t count = static_cast<std::size_t>(m);
  for (int mask = m >> 1; mask > 0; mask >>= 1) {
    const int partner = list[static_cast<std::size_t>(pos ^ mask)];
    const std::size_t half = count / 2;
    const bool upper = (pos & mask) != 0;
    const std::size_t keep_start = upper ? start + half : start;
    const std::size_t send_start = upper ? start : start + half;
    raw_sendrecv(std::span<const T>(acc.data() + send_start * block, half * block),
                 partner, std::span<T>(incoming.data(), half * block), partner, tag);
    apply_reduce<T>(op, std::span<const T>(incoming.data(), half * block),
                    std::span<T>(acc.data() + keep_start * block, half * block));
    start = keep_start;
    count = half;
  }
  // After log2(m) rounds this rank holds the reduction of block `pos`.
  std::copy(acc.data() + start * block, acc.data() + (start + 1) * block,
            block_out.data());
}

template <typename T>
void Communicator::allreduce_rabenseifner_over(const std::vector<int>& list,
                                               std::span<const T> in, std::span<T> out,
                                               ReduceOp op, int tag) {
  const int m = static_cast<int>(list.size());
  const std::size_t block =
      (in.size() + static_cast<std::size_t>(m) - 1) / static_cast<std::size_t>(m);
  // Pad to m equal blocks with identity-ish zeros (safe for Sum/Or; Min/Max
  // and Prod fall back to recursive doubling at the dispatch site).
  std::vector<T> padded(block * static_cast<std::size_t>(m), T{});
  std::copy(in.begin(), in.end(), padded.begin());
  std::vector<T> my_block(block);
  reduce_scatter_halving_over(list, std::span<const T>(padded),
                              std::span<T>(my_block), op, tag);
  allgather_over(list, std::span<const T>(my_block), std::span<T>(padded), tag + 1,
                 coll::Algo::Ring);
  std::copy(padded.begin(), padded.begin() + static_cast<std::ptrdiff_t>(in.size()),
            out.begin());
}

// ---- alltoall bodies ------------------------------------------------------

// Pairwise exchange: n-1 sendrecv rounds (XOR partners on power-of-two comms,
// shifted ring otherwise). Latency-heavier but never stages data.
template <typename T>
void Communicator::alltoall_pairwise(std::span<const T> send_data,
                                     std::span<T> recv_data, std::size_t block,
                                     int tag) {
  const int n = size();
  const bool pow2 = detail::is_power_of_two(static_cast<std::size_t>(n));
  for (int step = 1; step < n; ++step) {
    const int send_to = pow2 ? (rank() ^ step) : (rank() + step) % n;
    const int recv_from = pow2 ? (rank() ^ step) : (rank() - step + n) % n;
    raw_sendrecv(
        std::span<const T>(send_data.data() + block * static_cast<std::size_t>(send_to),
                           block),
        send_to,
        std::span<T>(recv_data.data() + block * static_cast<std::size_t>(recv_from),
                     block),
        recv_from, tag);
  }
}

// Bruck: ceil(log2(n)) combined-block rounds — fewer, larger messages, at the
// cost of local packing copies. Wins for small blocks.
template <typename T>
void Communicator::alltoall_bruck(std::span<const T> send_data,
                                  std::span<T> recv_data, std::size_t block,
                                  int tag) {
  const int n = size();
  const auto my = static_cast<std::size_t>(rank());
  // Phase 1: local rotation — tmp block i is the block destined to rank+i.
  std::vector<T> tmp(block * static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const std::size_t src = (my + static_cast<std::size_t>(i)) % static_cast<std::size_t>(n);
    std::copy(send_data.data() + block * src, send_data.data() + block * (src + 1),
              tmp.data() + block * static_cast<std::size_t>(i));
  }
  // Phase 2: for each bit, ship every block whose index has that bit set to
  // the rank 2^bit ahead; after all rounds tmp block i holds the block *from*
  // rank (rank - i).
  std::vector<T> pack(block * static_cast<std::size_t>((n + 1) / 2));
  std::vector<T> unpack(pack.size());
  for (int pow = 1; pow < n; pow <<= 1) {
    std::size_t cnt = 0;
    for (int i = 1; i < n; ++i) {
      if ((i & pow) == 0) continue;
      std::copy(tmp.data() + block * static_cast<std::size_t>(i),
                tmp.data() + block * static_cast<std::size_t>(i + 1),
                pack.data() + block * cnt);
      ++cnt;
    }
    const int dst = (rank() + pow) % n;
    const int src = (rank() - pow + n) % n;
    raw_sendrecv(std::span<const T>(pack.data(), block * cnt), dst,
                 std::span<T>(unpack.data(), block * cnt), src, tag);
    cnt = 0;
    for (int i = 1; i < n; ++i) {
      if ((i & pow) == 0) continue;
      std::copy(unpack.data() + block * cnt, unpack.data() + block * (cnt + 1),
                tmp.data() + block * static_cast<std::size_t>(i));
      ++cnt;
    }
  }
  // Phase 3: inverse rotation with reversal.
  for (int i = 0; i < n; ++i) {
    const std::size_t dst =
        (my + static_cast<std::size_t>(n - i)) % static_cast<std::size_t>(n);
    std::copy(tmp.data() + block * static_cast<std::size_t>(i),
              tmp.data() + block * static_cast<std::size_t>(i + 1),
              recv_data.data() + block * dst);
  }
}

// Spread: every transfer posted non-blocking at once; maximum overlap,
// maximum simultaneous buffer pressure. With n-1 receives in flight the
// receiver busy chain must not depend on wall-clock arrival order, so the
// receives are posted deferred and completed in virtual arrival order.
template <typename T>
void Communicator::alltoall_spread(std::span<const T> send_data,
                                   std::span<T> recv_data, std::size_t block,
                                   int tag) {
  const int n = size();
  std::vector<Request> recvs;
  std::vector<Request> sends;
  recvs.reserve(static_cast<std::size_t>(n - 1));
  sends.reserve(static_cast<std::size_t>(n - 1));
  for (int step = 1; step < n; ++step) {
    const int peer = (rank() + step) % n;
    recvs.push_back(raw_irecv(
        std::span<T>(recv_data.data() + block * static_cast<std::size_t>(peer), block),
        peer, tag, /*immediate=*/false));
  }
  for (int step = 1; step < n; ++step) {
    const int peer = (rank() + step) % n;
    sends.push_back(raw_isend(
        std::span<const T>(send_data.data() + block * static_cast<std::size_t>(peer),
                           block),
        peer, tag));
  }
  engine_->complete_in_arrival_order(recvs);
  engine_->wait_all(recvs);
  engine_->wait_all(sends);
}

}  // namespace cbmpi::mpi
