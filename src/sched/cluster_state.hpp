// Shared-cluster capacity accounting: which cores of which host are claimed
// by which running job. Placers read it (free_cores), the scheduler mutates
// it (claim/release). This is bookkeeping over a topo::Cluster — the actual
// containers/processes are materialized per job by the runtime.
#pragma once

#include <vector>

#include "topo/hardware.hpp"

namespace cbmpi::sched {

class ClusterState {
 public:
  explicit ClusterState(const topo::Cluster& cluster);

  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  int cores_per_host(topo::HostId host) const;
  int total_cores() const { return total_cores_; }

  /// Free cores on `host`; 0 when the host is blacklisted (placers then
  /// route around it with no special-casing).
  int free_count(topo::HostId host) const;
  int total_free() const;
  /// Ascending flat indices of unclaimed cores on `host`; empty when the
  /// host is blacklisted.
  std::vector<int> free_cores(topo::HostId host) const;

  /// Removes `host` from placement: free_count/free_cores report nothing
  /// available there. Running jobs keep their claims until release().
  void blacklist(topo::HostId host);
  bool is_blacklisted(topo::HostId host) const;
  int blacklisted_hosts() const;
  /// Cores a new job could ever get: total minus blacklisted hosts' cores.
  int placeable_cores() const;

  /// Claims the `count` lowest free cores on `host` for `job_id`; returns
  /// them. Throws if fewer than `count` are free.
  std::vector<int> claim(topo::HostId host, int count, int job_id);

  /// Releases every core held by `job_id` (all hosts).
  void release(int job_id);

  /// Owning job of a core, -1 when free.
  int owner(topo::HostId host, int core) const;

 private:
  struct HostCores {
    std::vector<int> owner;  ///< per flat core: job id or -1
    int free = 0;
    bool blacklisted = false;
  };

  std::vector<HostCores> hosts_;
  int total_cores_ = 0;
};

}  // namespace cbmpi::sched
