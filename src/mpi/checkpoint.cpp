#include "mpi/checkpoint.hpp"

#include "common/error.hpp"

namespace cbmpi::mpi {

namespace {
// Snapshot cost model: local staging write of the rank's state. A small
// fixed syscall/metadata latency plus ~2 GB/s streaming throughput.
constexpr Micros kSnapshotBaseCost = 5.0;
constexpr double kSnapshotUsPerByte = 0.0005;
}  // namespace

Bytes CheckpointData::total_bytes() const {
  Bytes total = 0;
  for (const auto& state : rank_state) total += state.size();
  return total;
}

Micros CheckpointStore::snapshot_cost(Bytes bytes) {
  return kSnapshotBaseCost + kSnapshotUsPerByte * static_cast<double>(bytes);
}

CheckpointStore::CheckpointStore(int nranks, Micros interval,
                                 std::shared_ptr<const CheckpointData> restore)
    : nranks_(nranks),
      interval_(interval),
      restore_(std::move(restore)),
      next_due_(interval) {
  CBMPI_REQUIRE(nranks > 0, "checkpoint store needs at least one rank");
  if (restore_)
    CBMPI_REQUIRE(restore_->rank_state.size() == static_cast<std::size_t>(nranks),
                  "restore snapshot has ", restore_->rank_state.size(),
                  " rank states, the job has ", nranks, " ranks");
}

bool CheckpointStore::decide(int round, Micros aligned) {
  if (interval_ <= 0.0) return false;
  std::lock_guard lock(mutex_);
  const auto [it, inserted] = decisions_.try_emplace(round, false);
  if (inserted && aligned >= next_due_) {
    it->second = true;
    next_due_ = aligned + interval_;
    pending_ = std::make_unique<CheckpointData>();
    pending_->round = round;
    pending_->at = aligned;
    pending_->progress_us = (restore_ ? restore_->progress_us : 0.0) + aligned;
    pending_->rank_state.resize(static_cast<std::size_t>(nranks_));
    pending_saves_ = 0;
  }
  return it->second;
}

void CheckpointStore::save(int rank, int round, Micros aligned,
                           std::vector<std::uint8_t> state) {
  std::lock_guard lock(mutex_);
  CBMPI_REQUIRE(pending_ && pending_->round == round,
                "checkpoint save for round ", round,
                " without a matching decide()");
  CBMPI_REQUIRE(rank >= 0 && rank < nranks_, "checkpoint save by rank ", rank);
  auto& slot = pending_->rank_state[static_cast<std::size_t>(rank)];
  CBMPI_REQUIRE(slot.empty() || state.empty(),
                "rank ", rank, " saved twice for round ", round);
  slot = std::move(state);
  if (++pending_saves_ == nranks_) {
    committed_ = std::shared_ptr<const CheckpointData>(std::move(pending_));
    events_.push_back({round, aligned, committed_->total_bytes()});
  }
}

std::shared_ptr<const CheckpointData> CheckpointStore::committed() const {
  std::lock_guard lock(mutex_);
  return committed_ ? committed_ : restore_;
}

std::vector<CheckpointEvent> CheckpointStore::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

}  // namespace cbmpi::mpi
