#include "apps/osu/microbench.hpp"

#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace cbmpi::apps::osu {

namespace {

constexpr int kTag = 101;

/// Measures `iters` repetitions of `body` on this rank in virtual time,
/// aligning all clocks before the measured region.
template <typename F>
Micros timed_region(mpi::Process& p, int warmup, int iters, F&& body) {
  for (int i = 0; i < warmup; ++i) body();
  p.sync_time();
  const Micros start = p.now();
  for (int i = 0; i < iters; ++i) body();
  return (p.now() - start) / static_cast<double>(iters);
}

bool is_pair_rank(mpi::Process& p) { return p.rank() <= 1; }

}  // namespace

Micros pt2pt_latency(mpi::Process& p, Bytes size, const PairOptions& opt) {
  auto& comm = p.world();
  if (!is_pair_rank(p)) {
    p.sync_time();
    return 0.0;
  }
  std::vector<std::byte> buf(std::max<Bytes>(size, 1));
  const std::span<const std::byte> out(buf.data(), size);
  const std::span<std::byte> in(buf.data(), size);
  const int peer = 1 - p.rank();

  const Micros round = timed_region(p, opt.warmup, opt.iterations, [&] {
    if (p.rank() == 0) {
      comm.send(out, peer, kTag);
      comm.recv(in, peer, kTag);
    } else {
      comm.recv(in, peer, kTag);
      comm.send(out, peer, kTag);
    }
  });
  return round / 2.0;
}

double pt2pt_bandwidth(mpi::Process& p, Bytes size, const PairOptions& opt) {
  auto& comm = p.world();
  if (!is_pair_rank(p)) {
    p.sync_time();
    return 0.0;
  }
  std::vector<std::byte> buf(std::max<Bytes>(size, 1));
  std::vector<std::vector<std::byte>> recv_bufs(
      static_cast<std::size_t>(opt.window),
      std::vector<std::byte>(std::max<Bytes>(size, 1)));
  std::uint8_t ack = 0;
  const int peer = 1 - p.rank();

  const Micros per_window = timed_region(p, opt.warmup, opt.iterations, [&] {
    std::vector<mpi::Request> reqs;
    reqs.reserve(static_cast<std::size_t>(opt.window));
    if (p.rank() == 0) {
      for (int w = 0; w < opt.window; ++w)
        reqs.push_back(comm.isend(std::span<const std::byte>(buf.data(), size), peer,
                                  kTag));
      comm.wait_all(reqs);
      comm.recv(std::span<std::uint8_t>(&ack, 1), peer, kTag + 1);
    } else {
      for (int w = 0; w < opt.window; ++w)
        reqs.push_back(comm.irecv(
            std::span<std::byte>(recv_bufs[static_cast<std::size_t>(w)].data(), size),
            peer, kTag));
      comm.wait_all(reqs);
      comm.send(std::span<const std::uint8_t>(&ack, 1), peer, kTag + 1);
    }
  });
  const double bytes_per_window =
      static_cast<double>(size) * static_cast<double>(opt.window);
  return bytes_per_window / per_window;  // B/us == MB/s
}

double pt2pt_bi_bandwidth(mpi::Process& p, Bytes size, const PairOptions& opt) {
  auto& comm = p.world();
  if (!is_pair_rank(p)) {
    p.sync_time();
    return 0.0;
  }
  std::vector<std::byte> send_buf(std::max<Bytes>(size, 1));
  std::vector<std::vector<std::byte>> recv_bufs(
      static_cast<std::size_t>(opt.window),
      std::vector<std::byte>(std::max<Bytes>(size, 1)));
  std::uint8_t ack = 0;
  const int peer = 1 - p.rank();

  const Micros per_window = timed_region(p, opt.warmup, opt.iterations, [&] {
    std::vector<mpi::Request> reqs;
    reqs.reserve(2 * static_cast<std::size_t>(opt.window));
    for (int w = 0; w < opt.window; ++w)
      reqs.push_back(comm.irecv(
          std::span<std::byte>(recv_bufs[static_cast<std::size_t>(w)].data(), size),
          peer, kTag));
    for (int w = 0; w < opt.window; ++w)
      reqs.push_back(comm.isend(std::span<const std::byte>(send_buf.data(), size),
                                peer, kTag));
    comm.wait_all(reqs);
    // Cross acks close the window in both directions.
    if (p.rank() == 0) {
      comm.recv(std::span<std::uint8_t>(&ack, 1), peer, kTag + 1);
      comm.send(std::span<const std::uint8_t>(&ack, 1), peer, kTag + 2);
    } else {
      comm.send(std::span<const std::uint8_t>(&ack, 1), peer, kTag + 1);
      comm.recv(std::span<std::uint8_t>(&ack, 1), peer, kTag + 2);
    }
  });
  const double bytes_per_window =
      2.0 * static_cast<double>(size) * static_cast<double>(opt.window);
  return bytes_per_window / per_window;
}

double pt2pt_message_rate(mpi::Process& p, Bytes size, const PairOptions& opt) {
  const double bw = pt2pt_bandwidth(p, size, opt);  // B/us
  if (size == 0) return 0.0;
  return bw / static_cast<double>(size) * 1e6;  // messages per second
}

Micros one_sided_latency(mpi::Process& p, OneSidedOp op, Bytes size,
                         const PairOptions& opt) {
  auto& comm = p.world();
  std::vector<std::byte> window_mem(std::max<Bytes>(size, 1) * 2);
  mpi::Window<std::byte> window(comm, std::span<std::byte>(window_mem));
  window.fence();

  Micros result = 0.0;
  if (is_pair_rank(p)) {
    std::vector<std::byte> origin(std::max<Bytes>(size, 1));
    const int peer = 1 - p.rank();
    if (p.rank() == 0) {
      result = timed_region(p, opt.warmup, opt.iterations, [&] {
        if (op == OneSidedOp::Put)
          window.put(std::span<const std::byte>(origin.data(), size), peer, 0);
        else
          window.get(std::span<std::byte>(origin.data(), size), peer, 0);
        window.flush(peer);
      });
    } else {
      p.sync_time();
    }
  } else {
    p.sync_time();
  }
  window.fence();
  return result;
}

double one_sided_bandwidth(mpi::Process& p, OneSidedOp op, Bytes size,
                           const PairOptions& opt) {
  auto& comm = p.world();
  std::vector<std::byte> window_mem(std::max<Bytes>(size, 1) *
                                    static_cast<std::size_t>(opt.window));
  mpi::Window<std::byte> window(comm, std::span<std::byte>(window_mem));
  window.fence();

  double result = 0.0;
  if (p.rank() == 0) {
    std::vector<std::byte> origin(std::max<Bytes>(size, 1));
    const int peer = 1;
    const Micros per_window = timed_region(p, opt.warmup, opt.iterations, [&] {
      for (int w = 0; w < opt.window; ++w) {
        const auto offset = static_cast<std::size_t>(w) * size;
        if (op == OneSidedOp::Put)
          window.put(std::span<const std::byte>(origin.data(), size), peer, offset);
        else
          window.get(std::span<std::byte>(origin.data(), size), peer, offset);
      }
      window.flush(peer);
    });
    result = static_cast<double>(size) * static_cast<double>(opt.window) / per_window;
  } else {
    p.sync_time();
  }
  window.fence();
  return result;
}

const char* to_string(Collective collective) {
  switch (collective) {
    case Collective::Bcast: return "MPI_Bcast";
    case Collective::Allreduce: return "MPI_Allreduce";
    case Collective::Allgather: return "MPI_Allgather";
    case Collective::Alltoall: return "MPI_Alltoall";
  }
  return "?";
}

Micros collective_latency(mpi::Process& p, Collective collective, Bytes size,
                          const PairOptions& opt) {
  auto& comm = p.world();
  const auto n = static_cast<std::size_t>(comm.size());
  const Bytes per_rank = std::max<Bytes>(size, 1);
  std::vector<std::byte> mine(per_rank);
  std::vector<std::byte> all(per_rank * n);
  std::vector<double> reduce_in(std::max<Bytes>(size / sizeof(double), 1));
  std::vector<double> reduce_out(reduce_in.size());

  auto one = [&] {
    switch (collective) {
      case Collective::Bcast:
        comm.bcast(std::span<std::byte>(mine), 0);
        break;
      case Collective::Allreduce:
        comm.allreduce(std::span<const double>(reduce_in),
                       std::span<double>(reduce_out), mpi::ReduceOp::Sum);
        break;
      case Collective::Allgather:
        comm.allgather(std::span<const std::byte>(mine), std::span<std::byte>(all));
        break;
      case Collective::Alltoall: {
        // OSU alltoall: `size` bytes exchanged with each peer.
        std::vector<std::byte> send_all(per_rank * n);
        comm.alltoall(std::span<const std::byte>(send_all), std::span<std::byte>(all));
        break;
      }
    }
  };

  for (int i = 0; i < opt.warmup; ++i) one();
  OnlineStats stats;
  for (int i = 0; i < opt.iterations; ++i) {
    p.sync_time();  // aligned start: the collective's cost is its makespan
    const Micros start = p.now();
    one();
    const Micros mine_elapsed = p.now() - start;
    const Micros max_elapsed =
        comm.allreduce_value(mine_elapsed, mpi::ReduceOp::Max);
    stats.add(max_elapsed);
  }
  return stats.mean();
}

}  // namespace cbmpi::apps::osu
