#include "migrate/coordinator.hpp"

#include "common/error.hpp"

namespace cbmpi::migrate {

Coordinator::Coordinator(Micros epoch, int min_rounds)
    : epoch_(epoch), min_rounds_(min_rounds) {
  CBMPI_REQUIRE(epoch > 0.0, "quiesce epoch must be positive, got ", epoch);
  CBMPI_REQUIRE(min_rounds >= 1, "quiesce needs at least one completed round");
}

void Coordinator::begin_attempt(int nranks) {
  const std::scoped_lock lock(mutex_);
  CBMPI_REQUIRE(nranks > 0, "quiesce coordinator needs ranks, got ", nranks);
  nranks_ = nranks;
  saves_ = 0;
  fired_ = false;
  decided_round_ = -1;
  verdict_ = false;
  round_ = -1;
  at_ = 0.0;
  pending_msgs_ = 0;
  state_.assign(static_cast<std::size_t>(nranks), {});
}

bool Coordinator::decide(int round, Micros aligned) {
  const std::scoped_lock lock(mutex_);
  if (round == decided_round_) return verdict_;
  decided_round_ = round;
  verdict_ = !fired_ && round_ < 0 && round >= min_rounds_ && aligned >= epoch_;
  if (verdict_) {
    round_ = round;
    at_ = aligned;
  }
  return verdict_;
}

void Coordinator::save(int rank, int round, Micros aligned,
                       std::vector<std::uint8_t> state,
                       std::uint64_t pending_msgs) {
  const std::scoped_lock lock(mutex_);
  CBMPI_REQUIRE(round == round_ && aligned == at_,
                "quiesce save from rank ", rank, " at round ", round,
                " does not match the firing round ", round_);
  auto& slot = state_.at(static_cast<std::size_t>(rank));
  CBMPI_REQUIRE(slot.empty() && !fired_, "rank ", rank, " quiesced twice");
  slot = std::move(state);
  pending_msgs_ += pending_msgs;
  if (++saves_ == nranks_) fired_ = true;
}

bool Coordinator::fired() const {
  const std::scoped_lock lock(mutex_);
  return fired_;
}

int Coordinator::round() const {
  const std::scoped_lock lock(mutex_);
  return round_;
}

Micros Coordinator::at() const {
  const std::scoped_lock lock(mutex_);
  return at_;
}

Bytes Coordinator::total_bytes() const {
  const std::scoped_lock lock(mutex_);
  Bytes total = 0;
  for (const auto& state : state_) total += static_cast<Bytes>(state.size());
  return total;
}

std::uint64_t Coordinator::drained_pending() const {
  const std::scoped_lock lock(mutex_);
  return pending_msgs_;
}

std::vector<std::vector<std::uint8_t>> Coordinator::take_state() {
  const std::scoped_lock lock(mutex_);
  CBMPI_REQUIRE(fired_, "take_state before the quiesce fired");
  return std::move(state_);
}

}  // namespace cbmpi::migrate
