// Pin-down (memory-registration) cache for the HCA rendezvous path.
//
// InfiniBand RDMA requires both endpoints' buffers to be registered (pinned)
// with the HCA before the transfer; registration is a syscall-heavy,
// size-proportional cost that dominates cold large-message latency ("Design
// and Implementation of MPICH2 over InfiniBand with RDMA Support"). Every
// production stack therefore keeps registrations alive in an LRU cache
// bounded by pinned-memory capacity, so repeated transfers from the same
// buffer skip the cost entirely (MVAPICH2's lazy-unregister scheme).
//
// Determinism: the cache is sharded per rank. Each rank's shard is touched
// only by that rank's own thread, in the rank's deterministic program
// order — a job-shared LRU would be ordered by wall-clock thread
// interleaving and break bit-identical reruns. Buffer ids are assigned by
// the ADI3 engine in per-rank first-use order for the same reason.
//
// This class is pure bookkeeping (what is pinned, what got evicted); the
// virtual-time costs of reg/dereg live in HcaChannel::reg_costs.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"

namespace cbmpi::fabric {

/// Job-level registration-cache outcome (run-report v4 "reg_cache" section).
struct RegCacheStats {
  bool enabled = false;         ///< TuningParams::reg_model was on
  Bytes capacity_bytes = 0;     ///< summed per-rank pinned capacity
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;  ///< entries deregistered to make room
  Bytes pinned_bytes = 0;       ///< pinned at job end, summed over ranks
  Bytes peak_pinned_bytes = 0;  ///< sum of per-rank pinned peaks
  Bytes registered_bytes = 0;   ///< total bytes pinned over the job
};

/// One pinned region, as exported by snapshot_entries() / re-pinned by
/// warm(): the buffer id the ADI3 engine assigned plus its pinned size.
struct RegCacheEntry {
  std::uint64_t id = 0;
  Bytes bytes = 0;
};

/// Pin-down state carried across the segments of a live migration
/// (src/migrate/): per-rank entry lists in MRU-first order. The migration
/// engine clears the moved ranks' lists — their registrations die with the
/// source container, so the resumed segment re-registers cold — and warms
/// every other rank's shard so unaffected ranks keep their hits.
struct RegCacheWarmState {
  std::vector<std::vector<RegCacheEntry>> entries;  ///< [rank][MRU..LRU]
};

class RegistrationCache {
 public:
  /// Outcome of one lookup: either the buffer was already pinned (hit) or it
  /// had to be registered, possibly evicting LRU victims first.
  struct Lookup {
    bool hit = false;
    std::uint64_t evictions = 0;  ///< victims deregistered to make room
    Bytes evicted_bytes = 0;
    Bytes registered = 0;  ///< bytes newly pinned (0 on a hit)
    /// False when the buffer exceeds the shard capacity outright: it is
    /// registered for the transfer and unpinned right after, never cached.
    bool cached = true;
  };

  /// One shard per rank; `per_rank_capacity[r]` is rank r's pinned budget
  /// (VF-share-scaled by the runtime on over-committed hosts).
  explicit RegistrationCache(std::vector<Bytes> per_rank_capacity);

  /// Looks `buffer_id` up in `rank`'s shard and registers it on a miss,
  /// evicting least-recently-used entries until it fits. A hit on an entry
  /// smaller than `bytes` (the buffer grew) re-registers: old entry evicted,
  /// new one pinned. Only `rank`'s own thread may call this for `rank`.
  Lookup lookup(int rank, std::uint64_t buffer_id, Bytes bytes);

  Bytes pinned(int rank) const;
  Bytes capacity(int rank) const;

  /// Aggregated over ranks. Call only after rank threads joined.
  RegCacheStats stats() const;

  /// Every shard's live entries, MRU first. Call only after rank threads
  /// joined (migration-segment export).
  std::vector<std::vector<RegCacheEntry>> snapshot_entries() const;

  /// Pre-pins `entries` (MRU first) into `rank`'s shard before the job body
  /// runs: recency order is preserved and entries that no longer fit the
  /// (possibly VF-share-rescaled) capacity are dropped from the LRU end.
  /// Counts nothing — warming is carried state, not traffic.
  void warm(int rank, const std::vector<RegCacheEntry>& entries);

 private:
  struct Entry {
    std::uint64_t id = 0;
    Bytes bytes = 0;
  };
  struct Shard {
    Bytes capacity = 0;
    Bytes pinned = 0;
    Bytes peak = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    Bytes registered = 0;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
  };

  void evict_lru(Shard& shard, Lookup& out);

  std::vector<Shard> shards_;
};

}  // namespace cbmpi::fabric
