#include "mpi/time_barrier.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cbmpi::mpi {

TimeBarrier::TimeBarrier(int participants) : participants_(participants) {
  CBMPI_REQUIRE(participants > 0, "barrier needs at least one participant");
}

Micros TimeBarrier::arrive_and_wait(Micros my_time) {
  std::unique_lock lock(mutex_);
  if (aborted_)
    throw AbortedError("job aborted: phase barrier torn down by a failing rank");
  current_max_ = std::max(current_max_, my_time);
  if (++waiting_ == participants_) {
    published_max_ = current_max_;
    current_max_ = 0.0;
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return published_max_;
  }
  const std::uint64_t my_generation = generation_;
  cv_.wait(lock, [&] { return generation_ != my_generation || aborted_; });
  if (generation_ == my_generation && aborted_)
    throw AbortedError("job aborted: phase barrier torn down by a failing rank");
  return published_max_;
}

void TimeBarrier::abort_all() {
  {
    std::lock_guard lock(mutex_);
    aborted_ = true;
  }
  cv_.notify_all();
}

}  // namespace cbmpi::mpi
