#include "prof/profile.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"

namespace cbmpi::prof {

const char* to_string(CallKind kind) {
  switch (kind) {
    case CallKind::Send: return "MPI_Send";
    case CallKind::Recv: return "MPI_Recv";
    case CallKind::Isend: return "MPI_Isend";
    case CallKind::Irecv: return "MPI_Irecv";
    case CallKind::Test: return "MPI_Test";
    case CallKind::Wait: return "MPI_Wait";
    case CallKind::Probe: return "MPI_Probe";
    case CallKind::Barrier: return "MPI_Barrier";
    case CallKind::Bcast: return "MPI_Bcast";
    case CallKind::Reduce: return "MPI_Reduce";
    case CallKind::Allreduce: return "MPI_Allreduce";
    case CallKind::Gather: return "MPI_Gather";
    case CallKind::Allgather: return "MPI_Allgather";
    case CallKind::Scatter: return "MPI_Scatter";
    case CallKind::Alltoall: return "MPI_Alltoall";
    case CallKind::Alltoallv: return "MPI_Alltoallv";
    case CallKind::AllgatherV: return "MPI_Allgatherv";
    case CallKind::Gatherv: return "MPI_Gatherv";
    case CallKind::Scatterv: return "MPI_Scatterv";
    case CallKind::ReduceScatter: return "MPI_Reduce_scatter_block";
    case CallKind::Scan: return "MPI_Scan";
    case CallKind::Exscan: return "MPI_Exscan";
    case CallKind::Put: return "MPI_Put";
    case CallKind::Get: return "MPI_Get";
    case CallKind::Accumulate: return "MPI_Accumulate";
    case CallKind::Fence: return "MPI_Win_fence";
    case CallKind::Flush: return "MPI_Win_flush";
    case CallKind::WinCreate: return "MPI_Win_create";
    case CallKind::Count_: break;
  }
  return "?";
}

void RankProfile::add_call(CallKind kind, Micros elapsed) {
  auto& stats = calls_[static_cast<std::size_t>(kind)];
  ++stats.count;
  stats.time += elapsed;
}

void RankProfile::add_channel_op(fabric::ChannelKind channel, Bytes bytes) {
  channel_ops_[static_cast<std::size_t>(channel)] += 1;
  channel_bytes_[static_cast<std::size_t>(channel)] += bytes;
}

void RankProfile::add_coll_algo(coll::Coll coll, coll::Algo algo) {
  ++coll_algos_[static_cast<std::size_t>(coll)][static_cast<std::size_t>(algo)];
}

std::uint64_t RankProfile::coll_algo(coll::Coll coll, coll::Algo algo) const {
  return coll_algos_[static_cast<std::size_t>(coll)][static_cast<std::size_t>(algo)];
}

void RankProfile::add_compute(Micros elapsed) { compute_time_ += elapsed; }

void RankProfile::add_recovery(Micros elapsed) { recovery_time_ += elapsed; }

const CallStats& RankProfile::call(CallKind kind) const {
  CBMPI_REQUIRE(kind != CallKind::Count_, "invalid call kind");
  return calls_[static_cast<std::size_t>(kind)];
}

std::uint64_t RankProfile::channel_ops(fabric::ChannelKind channel) const {
  return channel_ops_[static_cast<std::size_t>(channel)];
}

Bytes RankProfile::channel_bytes(fabric::ChannelKind channel) const {
  return channel_bytes_[static_cast<std::size_t>(channel)];
}

Micros RankProfile::comm_time() const {
  Micros total = 0.0;
  for (const auto& stats : calls_) total += stats.time;
  return total;
}

Micros RankProfile::compute_time() const { return compute_time_; }

Micros RankProfile::recovery_time() const { return recovery_time_; }

void RankProfile::merge(const RankProfile& other) {
  for (std::size_t i = 0; i < kCallKinds; ++i) {
    calls_[i].count += other.calls_[i].count;
    calls_[i].time += other.calls_[i].time;
  }
  for (std::size_t c = 0; c < coll::kColls; ++c)
    for (std::size_t a = 0; a < coll::kAlgos; ++a)
      coll_algos_[c][a] += other.coll_algos_[c][a];
  for (std::size_t i = 0; i < fabric::kChannelKinds; ++i) {
    channel_ops_[i] += other.channel_ops_[i];
    channel_bytes_[i] += other.channel_bytes_[i];
  }
  compute_time_ += other.compute_time_;
  recovery_time_ += other.recovery_time_;
}

void JobProfile::merge_rank(const RankProfile& rank_profile) {
  total.merge(rank_profile);
  ++ranks;
}

double JobProfile::comm_fraction() const {
  const Micros comm = total.comm_time();
  const Micros all = comm + total.compute_time();
  return all > 0.0 ? comm / all : 0.0;
}

std::string JobProfile::report() const {
  std::ostringstream os;
  os << "mpiP-like job profile (" << ranks << " ranks)\n";
  Table calls({"call", "count", "time(ms)"});
  for (std::size_t i = 0; i < kCallKinds; ++i) {
    const auto kind = static_cast<CallKind>(i);
    const auto& stats = total.call(kind);
    if (stats.count == 0) continue;
    calls.add_row({to_string(kind), std::to_string(stats.count),
                   Table::num(to_millis(stats.time), 3)});
  }
  calls.print(os);
  Table channels({"channel", "transfer ops", "bytes"});
  for (auto kind : {fabric::ChannelKind::Cma, fabric::ChannelKind::Shm,
                    fabric::ChannelKind::Hca}) {
    channels.add_row({fabric::to_string(kind),
                      std::to_string(total.channel_ops(kind)),
                      std::to_string(total.channel_bytes(kind))});
  }
  channels.print(os);
  Table algos({"collective", "algorithm", "calls"});
  bool any_algos = false;
  for (std::size_t c = 0; c < coll::kColls; ++c) {
    for (std::size_t a = 0; a < coll::kAlgos; ++a) {
      const auto n = total.coll_algo(static_cast<coll::Coll>(c),
                                     static_cast<coll::Algo>(a));
      if (n == 0) continue;
      algos.add_row({coll::to_string(static_cast<coll::Coll>(c)),
                     coll::to_string(static_cast<coll::Algo>(a)),
                     std::to_string(n)});
      any_algos = true;
    }
  }
  if (any_algos) algos.print(os);
  os << "communication fraction: " << Table::num(100.0 * comm_fraction(), 1) << "%\n";
  if (total.recovery_time() > 0.0)
    os << "fault recovery time: " << Table::num(to_millis(total.recovery_time()), 3)
       << " ms\n";
  return os.str();
}

}  // namespace cbmpi::prof
