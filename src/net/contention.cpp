#include "net/contention.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace cbmpi::net {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Relative tolerance for "this constraint is exhausted" during filling.
constexpr double kEps = 1e-12;

struct ActiveFlow {
  std::size_t index = 0;  ///< into the sorted flow vector
  double remaining = 0.0;
  double rate = 0.0;
};

/// Max-min fair allocation with per-flow rate caps (progressive filling):
/// all unfrozen flows grow together; a flow freezes when it reaches its own
/// cap or when a link on its path saturates. Returns per-link allocations
/// for the utilization bookkeeping.
void fill_rates(std::vector<ActiveFlow>& active, const std::vector<Flow>& flows,
                const std::vector<double>& caps, std::vector<double>& link_alloc,
                std::vector<int>& link_flows, std::vector<int>& touched) {
  touched.clear();
  for (auto& a : active) {
    a.rate = 0.0;
    for (const int l : flows[a.index].path) {
      const auto lu = static_cast<std::size_t>(l);
      if (link_flows[lu] == 0) touched.push_back(l);
      ++link_flows[lu];
      link_alloc[lu] = 0.0;
    }
  }

  std::vector<std::uint8_t> frozen(active.size(), 0);
  std::size_t unfrozen = active.size();
  while (unfrozen > 0) {
    double delta = kInf;
    for (std::size_t j = 0; j < active.size(); ++j)
      if (!frozen[j])
        delta = std::min(delta, flows[active[j].index].rate_cap - active[j].rate);
    for (const int l : touched) {
      const auto lu = static_cast<std::size_t>(l);
      if (link_flows[lu] > 0)
        delta = std::min(delta, (caps[lu] - link_alloc[lu]) /
                                    static_cast<double>(link_flows[lu]));
    }
    delta = std::max(delta, 0.0);

    for (std::size_t j = 0; j < active.size(); ++j) {
      if (frozen[j]) continue;
      active[j].rate += delta;
      for (const int l : flows[active[j].index].path)
        link_alloc[static_cast<std::size_t>(l)] += delta;
    }

    // Freeze cap-limited flows, then every flow on a saturated link. The
    // constraint that produced `delta` freezes at least one flow, so the
    // loop terminates.
    for (std::size_t j = 0; j < active.size(); ++j) {
      if (frozen[j]) continue;
      const Flow& f = flows[active[j].index];
      bool freeze = active[j].rate >= f.rate_cap * (1.0 - kEps);
      if (!freeze)
        for (const int l : f.path) {
          const auto lu = static_cast<std::size_t>(l);
          if (caps[lu] - link_alloc[lu] <= caps[lu] * kEps) {
            freeze = true;
            break;
          }
        }
      if (freeze) {
        frozen[j] = 1;
        --unfrozen;
        for (const int l : f.path) --link_flows[static_cast<std::size_t>(l)];
      }
    }
  }
  // Restore link_flows to zero for the next recompute (all flows frozen).
  for (const int l : touched) link_flows[static_cast<std::size_t>(l)] = 0;
}

}  // namespace

SettleResult settle(std::vector<Flow> flows, const std::vector<double>& link_caps) {
  SettleResult out;
  out.links.assign(link_caps.size(), {});
  if (flows.empty()) return out;

  for (const auto& f : flows) {
    CBMPI_REQUIRE(f.rate_cap > 0.0, "flow rate cap must be positive");
    for (const int l : f.path)
      CBMPI_REQUIRE(l >= 0 && static_cast<std::size_t>(l) < link_caps.size(),
                    "flow path references unknown link ", l);
  }

  // Canonical order: the engine's answers must not depend on the (wall-clock
  // racy) order flows were recorded in.
  std::sort(flows.begin(), flows.end(), [](const Flow& a, const Flow& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.key < b.key;
  });

  out.busy_begin = flows.front().start;
  out.busy_end = flows.front().start;
  out.flows.reserve(flows.size());

  std::vector<ActiveFlow> active;
  std::vector<double> link_alloc(link_caps.size(), 0.0);
  std::vector<int> link_flows(link_caps.size(), 0);
  std::vector<int> touched;
  std::vector<double> mean_accum(link_caps.size(), 0.0);

  auto record_outcome = [&](const Flow& f, Micros finish) {
    FlowOutcome o;
    o.key = f.key;
    o.finish = finish;
    o.hops = static_cast<int>(f.path.size());
    const double uncontended = f.bytes / f.rate_cap;
    o.factor = uncontended > 0.0 ? (finish - f.start) / uncontended : 1.0;
    // A lone flow's factor is analytically 1; snap float residue to exactly
    // 1.0 so the apply pass reproduces uncontended costs bit-identically.
    if (o.factor <= 1.0 + 1e-9) o.factor = 1.0;
    out.busy_end = std::max(out.busy_end, finish);
    out.flows.push_back(o);
  };

  std::size_t next = 0;
  Micros t = flows.front().start;
  while (next < flows.size() || !active.empty()) {
    // Admit every flow starting now, then rebalance.
    bool admitted = false;
    while (next < flows.size() && flows[next].start <= t) {
      const Flow& f = flows[next];
      if (f.bytes <= 0.0 || f.path.empty()) {
        // Nothing to drain (control-sized or host-local): finishes instantly
        // and never contends.
        record_outcome(f, f.start);
      } else {
        active.push_back({next, f.bytes, 0.0});
        admitted = true;
      }
      ++next;
    }
    if (active.empty()) {
      if (next < flows.size()) t = flows[next].start;
      continue;
    }
    if (admitted)
      fill_rates(active, flows, link_caps, link_alloc, link_flows, touched);

    // Next event: the earliest finish among active flows or the next start.
    Micros finish_at = kInf;
    for (const auto& a : active)
      finish_at = std::min(finish_at, t + a.remaining / a.rate);
    const Micros start_at = next < flows.size() ? flows[next].start : kInf;
    const Micros te = std::min(finish_at, start_at);

    // Utilization bookkeeping over [t, te): rates are constant here.
    for (const int l : touched) {
      const auto lu = static_cast<std::size_t>(l);
      const double util = link_alloc[lu] / link_caps[lu];
      out.links[lu].peak = std::max(out.links[lu].peak, util);
      mean_accum[lu] += util * (te - t);
    }

    bool finished = false;
    for (std::size_t j = 0; j < active.size();) {
      const Micros fin = t + active[j].remaining / active[j].rate;
      if (fin <= te) {
        record_outcome(flows[active[j].index], te);
        active[j] = active.back();
        active.pop_back();
        finished = true;
      } else {
        active[j].remaining -= active[j].rate * (te - t);
        ++j;
      }
    }
    t = te;
    if (finished && !active.empty())
      fill_rates(active, flows, link_caps, link_alloc, link_flows, touched);
  }

  const Micros span = out.busy_end - out.busy_begin;
  if (span > 0.0)
    for (std::size_t l = 0; l < out.links.size(); ++l)
      out.links[l].mean = mean_accum[l] / span;

  std::sort(out.flows.begin(), out.flows.end(),
            [](const FlowOutcome& a, const FlowOutcome& b) { return a.key < b.key; });
  return out;
}

}  // namespace cbmpi::net
