// Shared helpers for the figure/table reproduction benches.
//
// Every bench prints the paper reference it reproduces, the series the paper
// reports, and finishes with a PASS/CHECK line on the qualitative shape so
// EXPERIMENTS.md can quote results directly.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/options.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "container/deployment.hpp"
#include "mpi/runtime.hpp"

namespace cbmpi::bench {

inline void print_banner(const std::string& id, const std::string& title,
                         const std::string& paper_claim) {
  std::printf("=== %s — %s ===\n", id.c_str(), title.c_str());
  std::printf("paper: %s\n\n", paper_claim.c_str());
}

inline void print_shape_check(bool ok, const std::string& what) {
  std::printf("[%s] %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH", what.c_str());
}

/// The paper's three library configurations for one deployment.
struct ModeConfigs {
  mpi::JobConfig def;     ///< default MVAPICH2 behaviour (hostname locality)
  mpi::JobConfig opt;     ///< proposed locality-aware design
  mpi::JobConfig native;  ///< no containers (upper bound)
};

inline ModeConfigs make_modes(int hosts, int containers_per_host, int procs_per_host,
                              container::SocketPolicy socket_policy =
                                  container::SocketPolicy::Pack) {
  ModeConfigs modes;
  modes.def.deployment =
      container::DeploymentSpec::containers(hosts, containers_per_host, procs_per_host);
  modes.def.deployment.socket_policy = socket_policy;
  modes.def.policy = fabric::LocalityPolicy::HostnameBased;

  modes.opt = modes.def;
  modes.opt.policy = fabric::LocalityPolicy::ContainerAware;

  modes.native.deployment =
      container::DeploymentSpec::native_hosts(hosts, procs_per_host);
  modes.native.deployment.socket_policy = socket_policy;
  modes.native.policy = fabric::LocalityPolicy::HostnameBased;
  return modes;
}

/// Declares the shared --seed option the ext benches accept. The value feeds
/// every JobConfig / scheduler seed in the bench, so a rerun with the same
/// seed reproduces the run exactly and a different seed gives an independent
/// sample of the same experiment.
inline std::uint64_t declare_seed(Options& opts, std::uint64_t def = 42) {
  return static_cast<std::uint64_t>(opts.get_int(
      "seed", static_cast<std::int64_t>(def),
      "base RNG seed: same seed -> bit-identical rerun"));
}

/// Message-size sweep 1 B .. max (powers of two), OSU-style.
inline std::vector<Bytes> size_sweep(Bytes from, Bytes upto) {
  std::vector<Bytes> sizes;
  for (Bytes s = from; s <= upto; s *= 2) sizes.push_back(s);
  return sizes;
}

inline double percent_better(double baseline, double improved) {
  return (baseline - improved) / baseline * 100.0;
}

}  // namespace cbmpi::bench
