// PGAS-style global arrays on top of the one-sided layer.
//
// The paper's future work proposes "exploring the performance
// characterization of other programming models (e.g. PGAS) in container-based
// HPC cloud"; this module provides that programming model as a library:
// a block-distributed global array with one-sided read/write/accumulate,
// which inherits the locality-aware channel selection transparently — remote
// accesses to co-resident containers ride SHM/CMA instead of the HCA
// loopback, exactly like two-sided traffic does.
//
// Collective lifecycle: construction and sync() must be called by every rank
// of the communicator; element accesses are one-sided and independent.
#pragma once

#include <vector>

#include "mpi/window.hpp"

namespace cbmpi::pgas {

template <typename T>
class GlobalArray {
 public:
  /// Collective. Elements are block-distributed: rank r owns the index range
  /// [r*ceil(n/p), min(n, (r+1)*ceil(n/p))).
  GlobalArray(mpi::Communicator& comm, std::size_t global_size, T initial = T{})
      : comm_(&comm),
        global_size_(global_size),
        block_(comm.size() > 0
                   ? (global_size + static_cast<std::size_t>(comm.size()) - 1) /
                         static_cast<std::size_t>(comm.size())
                   : 0),
        local_(block_ > 0 ? block_ : 1, initial),
        window_(comm, std::span<T>(local_)) {
    window_.fence();
  }

  std::size_t size() const { return global_size_; }

  int owner_of(std::size_t index) const {
    return static_cast<int>(index / block_);
  }

  std::size_t local_begin() const {
    return std::min(global_size_, block_ * static_cast<std::size_t>(comm_->rank()));
  }
  std::size_t local_end() const {
    return std::min(global_size_, local_begin() + block_);
  }

  /// Direct view of the locally-owned elements.
  std::span<T> local() {
    return std::span<T>(local_.data(), local_end() - local_begin());
  }

  /// One-sided element read (get + flush: completes immediately).
  T read(std::size_t index) {
    check(index);
    T value{};
    const int owner = owner_of(index);
    window_.get(std::span<T>(&value, 1), owner, index - block_ * static_cast<std::size_t>(owner));
    window_.flush(owner);
    return value;
  }

  /// One-sided element write; completes at the next sync()/flush.
  void write(std::size_t index, const T& value) {
    check(index);
    const int owner = owner_of(index);
    window_.put(std::span<const T>(&value, 1), owner,
                index - block_ * static_cast<std::size_t>(owner));
  }

  /// Atomic one-sided element update.
  void accumulate(std::size_t index, const T& value,
                  mpi::ReduceOp op = mpi::ReduceOp::Sum) {
    check(index);
    const int owner = owner_of(index);
    window_.accumulate(std::span<const T>(&value, 1), owner,
                       index - block_ * static_cast<std::size_t>(owner), op);
  }

  /// Bulk one-sided read of [from, from + out.size()), possibly spanning
  /// several owners.
  void read_block(std::size_t from, std::span<T> out) {
    CBMPI_REQUIRE(from + out.size() <= global_size_, "global array read out of range");
    std::size_t done = 0;
    while (done < out.size()) {
      const std::size_t index = from + done;
      const int owner = owner_of(index);
      const std::size_t offset = index - block_ * static_cast<std::size_t>(owner);
      const std::size_t chunk = std::min(out.size() - done, block_ - offset);
      window_.get(out.subspan(done, chunk), owner, offset);
      window_.flush(owner);
      done += chunk;
    }
  }

  /// Bulk one-sided write.
  void write_block(std::size_t from, std::span<const T> data) {
    CBMPI_REQUIRE(from + data.size() <= global_size_,
                  "global array write out of range");
    std::size_t done = 0;
    while (done < data.size()) {
      const std::size_t index = from + done;
      const int owner = owner_of(index);
      const std::size_t offset = index - block_ * static_cast<std::size_t>(owner);
      const std::size_t chunk = std::min(data.size() - done, block_ - offset);
      window_.put(data.subspan(done, chunk), owner, offset);
      done += chunk;
    }
  }

  /// Collective epoch boundary: completes all outstanding one-sided traffic
  /// on every rank (MPI_Win_fence semantics).
  void sync() { window_.fence(); }

 private:
  void check(std::size_t index) const {
    CBMPI_REQUIRE(index < global_size_, "global array index ", index,
                  " out of range (size ", global_size_, ")");
  }

  mpi::Communicator* comm_;
  std::size_t global_size_;
  std::size_t block_;
  std::vector<T> local_;
  mpi::Window<T> window_;
};

}  // namespace cbmpi::pgas
