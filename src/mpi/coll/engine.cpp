#include "mpi/coll/engine.hpp"

namespace cbmpi::coll {

Algo Engine::choose(Coll coll, Bytes bytes, int ranks,
                    bool two_level_available) const {
  Algo algo = table_.select(coll, bytes, ranks, cph_);
  if (algo == Algo::TwoLevel && !two_level_available) algo = Algo::Auto;
  if (algo == Algo::Auto) algo = heuristic(coll, bytes, ranks);
  return algo;
}

Algo Engine::heuristic(Coll coll, Bytes bytes, int ranks) const {
  // These are the pre-engine hard-wired choices, so Auto (and therefore an
  // empty tuning table on a trivial-locality job) reproduces the legacy
  // schedule exactly.
  switch (coll) {
    case Coll::Barrier:
      return Algo::Dissemination;
    case Coll::Bcast:
      return (bytes >= params_.bcast_large_threshold && ranks >= 4)
                 ? Algo::VanDeGeijn
                 : Algo::Binomial;
    case Coll::Reduce:
      return Algo::Binomial;
    case Coll::Allreduce: {
      const bool pow2 = ranks > 0 && (ranks & (ranks - 1)) == 0;
      if (!pow2) return Algo::ReduceBcast;
      return (bytes >= params_.allreduce_large_threshold && ranks >= 4)
                 ? Algo::Rabenseifner
                 : Algo::RecursiveDoubling;
    }
    case Coll::Allgather:
      return Algo::Ring;
    case Coll::Alltoall:
      return Algo::Pairwise;
    case Coll::Count_:
      break;
  }
  return Algo::Auto;  // unreachable
}

}  // namespace cbmpi::coll
