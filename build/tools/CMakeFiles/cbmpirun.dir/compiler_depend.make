# Empty compiler generated dependencies file for cbmpirun.
# This may be replaced when dependencies are built.
