file(REMOVE_RECURSE
  "CMakeFiles/pt2pt_property_test.dir/pt2pt_property_test.cpp.o"
  "CMakeFiles/pt2pt_property_test.dir/pt2pt_property_test.cpp.o.d"
  "pt2pt_property_test"
  "pt2pt_property_test.pdb"
  "pt2pt_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt2pt_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
