#include "mpi/runtime.hpp"

#include <exception>
#include <numeric>
#include <thread>

#include "container/engine.hpp"
#include "mpi/locality.hpp"
#include "osl/machine.hpp"
#include "topo/hardware.hpp"

namespace cbmpi::mpi {

Process::Process(JobState& job, int rank, osl::SimProcess& proc,
                 TimeBarrier& phase_barrier,
                 std::shared_ptr<const CommGroup> world_group)
    : os_(&proc),
      engine_(job, rank, proc),
      world_(engine_, std::move(world_group), /*id=*/0),
      phase_barrier_(&phase_barrier) {}

void Process::compute(double ops) {
  const Micros before = os_->clock().now();
  os_->compute(ops);
  engine_.profile().add_compute(os_->clock().now() - before);
  if (engine_.job().trace)
    engine_.job().trace->record({sim::TraceKind::Compute, rank(), rank(),
                                 static_cast<Bytes>(ops), os_->clock().now(), ""});
}

Xoshiro256 Process::make_rng(std::uint64_t salt) const {
  return Xoshiro256(
      mix64(seed() ^ mix64(salt) ^
            (static_cast<std::uint64_t>(rank()) * std::uint64_t{0x9e3779b97f4a7c15})));
}

void Process::sync_time() {
  const Micros aligned = phase_barrier_->arrive_and_wait(os_->clock().now());
  os_->clock().advance_to(aligned);
}

namespace {

container::ContainerSpec container_spec_for(const container::DeploymentSpec& spec,
                                            const container::JobPlacement& placement,
                                            topo::HostId host, int index) {
  container::ContainerSpec cont;
  const bool vm = spec.isolation == container::IsolationKind::VirtualMachine;
  cont.name = "host" + std::to_string(host) + (vm ? "-vm" : "-cont") +
              std::to_string(index);
  cont.privileged = spec.privileged;
  cont.share_host_ipc = spec.share_host_ipc;
  cont.share_host_pid = spec.share_host_pid;
  cont.virtual_machine = vm;
  cont.ivshmem = vm && spec.ivshmem;
  cont.cpuset = placement.container_cpusets[static_cast<std::size_t>(index)];
  return cont;
}

}  // namespace

JobResult run_job(const JobConfig& config, const std::function<void(Process&)>& body) {
  const auto& spec = config.deployment;
  const int nranks = spec.total_ranks();
  CBMPI_REQUIRE(nranks > 0, "job needs at least one rank");

  // --- hardware + OS ------------------------------------------------------
  const int hosts = std::max(config.cluster_hosts, spec.num_hosts);
  osl::Machine machine(topo::ClusterBuilder().hosts(hosts).build(), config.profile);
  container::Engine engine(machine);
  const auto placement = container::plan_deployment(machine.cluster(), spec);

  // --- containers -----------------------------------------------------------
  // containers[h][c] is container c on host h (empty when native).
  std::vector<std::vector<container::Container*>> containers(
      static_cast<std::size_t>(spec.num_hosts));
  if (!spec.native()) {
    for (int h = 0; h < spec.num_hosts; ++h) {
      auto& on_host = containers[static_cast<std::size_t>(h)];
      for (int c = 0; c < spec.containers_per_host; ++c)
        on_host.push_back(&engine.run(h, container_spec_for(spec, placement, h, c)));
    }
  }

  // --- rank processes ---------------------------------------------------------
  std::vector<std::unique_ptr<osl::SimProcess>> processes;
  processes.reserve(static_cast<std::size_t>(nranks));
  std::vector<bool> hca_access(static_cast<std::size_t>(nranks), true);
  for (int r = 0; r < nranks; ++r) {
    const auto& slot = placement.slots[static_cast<std::size_t>(r)];
    if (slot.container_index < 0) {
      processes.push_back(engine.spawn_native(slot.host, slot.core));
      hca_access[static_cast<std::size_t>(r)] =
          machine.cluster().host(slot.host).shape().has_hca;
    } else {
      auto* cont = containers[static_cast<std::size_t>(slot.host)]
                             [static_cast<std::size_t>(slot.container_index)];
      processes.push_back(engine.spawn(*cont, slot.core_slot));
      hca_access[static_cast<std::size_t>(r)] = cont->can_access_hca();
    }
  }

  // --- job state -----------------------------------------------------------
  JobState job;
  job.profile = &machine.profile();
  job.tuning = config.tuning;
  job.shm = std::make_unique<fabric::ShmChannel>(machine.profile(), config.tuning);
  job.cma = std::make_unique<fabric::CmaChannel>(machine.profile());
  job.hca = std::make_unique<fabric::HcaChannel>(machine.profile(), config.tuning);
  job.nranks = nranks;
  job.seed = config.seed;

  sim::TraceRecorder recorder;
  if (config.record_trace) job.trace = &recorder;

  const bool vm_mode =
      spec.isolation == container::IsolationKind::VirtualMachine && !spec.native();
  std::vector<fabric::RankEndpoint> endpoints;
  endpoints.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    auto& proc = *processes[static_cast<std::size_t>(r)];
    endpoints.push_back(
        {&proc, proc.hostname(), hca_access[static_cast<std::size_t>(r)], vm_mode});
  }
  job.selector = std::make_unique<fabric::ChannelSelector>(
      config.policy, config.tuning, std::move(endpoints));
  job.selector->force_channel(config.forced_channel);

  job.matchers.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) job.matchers.push_back(std::make_unique<Matcher>());
  job.rank_profiles.resize(static_cast<std::size_t>(nranks));

  // --- container locality detection (init-time, before any communication) --
  // Running the announce/scan protocol for all ranks here is equivalent to
  // each rank doing it before the PMI init barrier, and keeps it
  // deterministic; each rank is charged the modelled detection cost.
  if (config.policy == fabric::LocalityPolicy::ContainerAware) {
    ContainerLocalityDetector detector("job" + std::to_string(config.seed), nranks);
    for (int r = 0; r < nranks; ++r)
      detector.announce(*processes[static_cast<std::size_t>(r)], r);
    std::vector<std::vector<std::uint8_t>> matrix;
    matrix.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      matrix.push_back(detector.co_resident_row(*processes[static_cast<std::size_t>(r)]));
      processes[static_cast<std::size_t>(r)]->clock().advance(
          detector.detection_cost());
    }
    job.selector->set_detected_locality(std::move(matrix));
  }

  // --- run rank threads ----------------------------------------------------
  auto world_group = [&] {
    std::vector<int> ranks(static_cast<std::size_t>(nranks));
    std::iota(ranks.begin(), ranks.end(), 0);
    return CommGroup::make(std::move(ranks));
  }();

  TimeBarrier phase_barrier(nranks);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        Process process(job, r, *processes[static_cast<std::size_t>(r)], phase_barrier,
                        world_group);
        body(process);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Unblock peers that may be blocked waiting on this rank; they will
        // observe the abort flag and raise. The first error is rethrown below.
        job.aborted.store(true, std::memory_order_release);
        for (auto& matcher : job.matchers) matcher->poke();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (auto& error : errors)
    if (error) std::rethrow_exception(error);

  // --- results ---------------------------------------------------------------
  JobResult result;
  result.rank_times.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    const Micros t = processes[static_cast<std::size_t>(r)]->clock().now();
    result.rank_times.push_back(t);
    result.job_time = std::max(result.job_time, t);
    result.profile.merge_rank(job.rank_profiles[static_cast<std::size_t>(r)]);
  }
  result.hca_queue_pairs = job.hca->queue_pairs();
  if (config.record_trace) result.trace = recorder.events();
  return result;
}

}  // namespace cbmpi::mpi
