// Figure 12: application performance — Graph 500 and the NAS Parallel
// Benchmarks — with Def / Opt / Native configurations, containers spread over
// the cluster. The paper runs 256 processes on 16 hosts (64 containers) with
// Graph500 (22,16) and NAS class D; defaults here are scaled down (64 ranks,
// smaller problems) and can be raised via flags.
//
// Expected shape (paper): Opt cuts execution time by up to 16% (Graph500)
// and 11% (CG) vs Def, and lands within 5% (Graph500) / 9% (NAS) of native.
#include "bench_util.hpp"

#include "apps/graph500/bfs.hpp"
#include "apps/npb/npb.hpp"

using namespace cbmpi;
using namespace cbmpi::bench;

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const int hosts = static_cast<int>(opts.get_int("hosts", 16, "cluster hosts"));
  const int containers = static_cast<int>(
      opts.get_int("containers-per-host", 4, "containers per host"));
  const int procs = static_cast<int>(
      opts.get_int("procs-per-host", 4, "processes per host (paper: 16)"));
  const int scale = static_cast<int>(
      opts.get_int("scale", 14, "Graph500 scale (paper: 22)"));
  if (opts.finish("Figure 12: Graph500 + NAS application performance")) return 0;

  const int nranks = hosts * procs;
  print_banner("Figure 12", "application performance, " + std::to_string(nranks) +
                                " processes / " +
                                std::to_string(hosts * containers) + " containers",
               "Opt cuts up to 16% (Graph500) / 11% (CG) vs Def; <=5%/9% "
               "overhead vs native");

  const auto modes = make_modes(hosts, containers, procs);

  struct AppRow {
    std::string name;
    Micros def = 0, opt = 0, native = 0;
    bool verified = true;
  };
  std::vector<AppRow> rows;

  auto run_app = [&](const std::string& name, auto&& kernel) {
    AppRow row;
    row.name = name;
    for (auto [config, slot] :
         {std::pair{&modes.def, &row.def}, std::pair{&modes.opt, &row.opt},
          std::pair{&modes.native, &row.native}}) {
      Micros time = 0.0;
      bool ok = true;
      mpi::run_job(*config, [&](mpi::Process& p) {
        const auto [t, verified] = kernel(p);
        if (p.rank() == 0) {
          time = t;
          ok = verified;
        }
      });
      *slot = time;
      row.verified = row.verified && ok;
    }
    rows.push_back(row);
    std::printf("  %-8s done (Def %.1f ms, Opt %.1f ms, Native %.1f ms)\n",
                name.c_str(), to_millis(row.def), to_millis(row.opt),
                to_millis(row.native));
  };

  std::printf("running applications...\n");

  run_app("Graph500", [&](mpi::Process& p) {
    const apps::graph500::EdgeListParams params{scale, 16, 1};
    const auto graph = apps::graph500::build_graph(p, params);
    Micros total = 0.0;
    for (const auto root : apps::graph500::choose_roots(params, 2))
      total += apps::graph500::run_bfs(p, graph, root).time;
    return std::pair{total / 2.0, true};
  });

  run_app("EP", [&](mpi::Process& p) {
    apps::npb::EpParams params;
    params.pairs_per_rank = 1 << 13;
    const auto r = apps::npb::run_ep(p, params);
    return std::pair{r.time, r.verified};
  });

  run_app("CG", [&](mpi::Process& p) {
    apps::npb::CgParams params;
    params.grid = std::max(64, nranks);
    params.iterations = 12;
    const auto r = apps::npb::run_cg(p, params);
    return std::pair{r.time, r.verified};
  });

  run_app("MG", [&](mpi::Process& p) {
    apps::npb::MgParams params;
    params.nx = params.ny = 32;
    params.nz = std::max(32, 2 * nranks);
    params.vcycles = 3;
    const auto r = apps::npb::run_mg(p, params);
    return std::pair{r.time, r.verified};
  });

  run_app("FT", [&](mpi::Process& p) {
    apps::npb::FtParams params;
    params.ny = 8;
    params.nx = params.nz = std::max(32, nranks);
    params.timesteps = 2;
    const auto r = apps::npb::run_ft(p, params);
    return std::pair{r.time, r.verified};
  });

  run_app("LU", [&](mpi::Process& p) {
    apps::npb::LuParams params;
    params.grid = std::max(64, nranks * 4);
    params.sweeps = 2;
    const auto r = apps::npb::run_lu(p, params);
    return std::pair{r.time, r.verified};
  });

  run_app("IS", [&](mpi::Process& p) {
    apps::npb::IsParams params;
    params.keys_per_rank = 1 << 14;
    const auto r = apps::npb::run_is(p, params);
    return std::pair{r.time, r.verified};
  });

  std::printf("\n");
  Table table({"application", "Def (ms)", "Opt (ms)", "Native (ms)",
               "Opt saves vs Def", "Opt overhead vs Native", "verified"});
  double best_saving = 0.0;
  for (const auto& row : rows) {
    const double saving = percent_better(row.def, row.opt);
    const double overhead = (row.opt - row.native) / row.native * 100.0;
    if (row.name != "EP") best_saving = std::max(best_saving, saving);
    table.add_row({row.name, Table::num(to_millis(row.def), 2),
                   Table::num(to_millis(row.opt), 2),
                   Table::num(to_millis(row.native), 2),
                   Table::num(saving, 1) + "%", Table::num(overhead, 1) + "%",
                   row.verified ? "yes" : "NO"});
  }
  table.print(std::cout);

  bool all_verified = true;
  double worst_overhead = 0.0;
  for (const auto& row : rows) {
    all_verified = all_verified && row.verified;
    worst_overhead =
        std::max(worst_overhead, (row.opt - row.native) / row.native * 100.0);
  }
  print_shape_check(all_verified, "all applications verified");
  print_shape_check(best_saving > 5.0,
                    "Opt saves a clear margin over Def on comm-bound apps");
  print_shape_check(worst_overhead < 15.0,
                    "Opt within ~15% of native on every app");
  return 0;
}
