// Elastic rebalancing: should a just-placed job be live-migrated mid-run?
//
// The scheduler consults the ElasticRebalancer after placement but before
// launch. The rebalancer inspects the achieved placement and — under the
// configured policy — proposes at most one container move:
//
//   * Defrag    — fold a job's smallest host fragment back onto another of
//                 its hosts with free cores, converting inter-host pairs to
//                 intra-host (SHM/CMA-eligible) pairs.
//   * Evacuate  — move the job's containers off a host that has already
//                 produced crash faults this run (flaky-host avoidance).
//   * Colocate  — co-locate the heaviest cross-host communicating pair from
//                 the job's traffic hint.
//
// Every proposal then passes the migrate::Engine cost gate: predicted pause
// (pre-copy + stop-and-copy + cold re-registration) vs predicted locality
// win over the traffic still to come. Only worthwhile moves are accepted;
// the scheduler runs accepted jobs through migrate::Engine::run.
//
// Pure function of (job, placement, state, crash history, seed-free policy
// math) — same run, same proposals, bit-identical reruns.
#pragma once

#include "migrate/engine.hpp"
#include "sched/placer.hpp"

namespace cbmpi::sched {

/// The rebalancer's verdict for one job launch.
struct RebalanceDecision {
  bool proposed = false;  ///< the policy found a candidate move
  bool accepted = false;  ///< ... and the cost gate judged it worthwhile
  migrate::MigrationPlan plan;
};

class ElasticRebalancer {
 public:
  ElasticRebalancer(migrate::MigrationPolicy policy, migrate::CostModel cost);

  /// Evaluates `job` as placed. `config` supplies the machine profile and
  /// tuning the cost gate prices against; `state` the free-core map (the
  /// job's own claims are already recorded, so free cores are genuinely
  /// spare); `host_crashes` the per-physical-host crash count so far.
  RebalanceDecision propose(const JobSpec& job, const Placement& placement,
                            const mpi::JobConfig& config,
                            const ClusterState& state,
                            const std::vector<int>& host_crashes,
                            const topo::HostShape& shape) const;

  migrate::MigrationPolicy policy() const { return policy_; }

 private:
  migrate::MigrationPolicy policy_;
  migrate::CostModel cost_;
};

}  // namespace cbmpi::sched
