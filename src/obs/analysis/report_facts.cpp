#include "obs/analysis/report_facts.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/table.hpp"
#include "obs/json.hpp"

namespace cbmpi::obs::analysis {

namespace {

/// Percentile over a parsed "buckets" array (le/count objects) — the same
/// upper-bound rule as HistogramSnapshot::percentile, usable on v4 reports
/// that predate the inline p50/p95/p99 fields.
double bucket_percentile(const JsonValue& buckets, double total, double q) {
  if (total <= 0.0 || buckets.size() == 0) return 0.0;
  const double target = std::max(1.0, std::ceil(q * total));
  double running = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    running += buckets[i]["count"].as_number();
    if (running >= target) return buckets[i]["le"].as_number();
  }
  return buckets[buckets.size() - 1]["le"].as_number();
}

void extract_metrics(const JsonValue& metrics,
                     std::map<std::string, double>& out) {
  const auto& counters = metrics["counters"].as_array();
  for (const auto& c : counters)
    out["counter." + c["name"].as_string()] = c["value"].as_number();
  struct Quantile {
    double q;
    const char* key;
  };
  static constexpr Quantile kQuantiles[] = {
      {0.50, "p50"}, {0.95, "p95"}, {0.99, "p99"}};
  const auto& hists = metrics["histograms"].as_array();
  for (const auto& h : hists) {
    const std::string name = "hist." + h["name"].as_string();
    out[name + ".count"] = h["count"].as_number();
    for (const auto& [q, key] : kQuantiles) {
      // v5 reports carry the percentiles inline; v4 predates them, so fall
      // back to the same upper-bound rule over the bucket array.
      out[name + "." + key] =
          h.has(key) ? h[key].as_number()
                     : bucket_percentile(h["buckets"], h["count"].as_number(),
                                         q);
    }
  }
}

void extract_analysis(const JsonValue& analysis, ReportFacts& facts) {
  if (analysis.kind() != JsonValue::Kind::Object) return;
  facts.has_analysis = true;
  auto& out = facts.scalars;
  out["analysis.critical_path_us"] = analysis["critical_path_us"].as_number();
  for (const auto& b : analysis["blame"].as_array())
    out["analysis.blame." + b["category"].as_string() + "_us"] =
        b["time_us"].as_number();
  double late_sender = 0, late_receiver = 0, coll = 0, cont = 0, reg = 0;
  for (const auto& ws : analysis["wait_states"].as_array()) {
    late_sender += ws["late_sender_us"].as_number();
    late_receiver += ws["late_receiver_us"].as_number();
    coll += ws["coll_imbalance_us"].as_number();
    cont += ws["contention_us"].as_number();
    reg += ws["registration_us"].as_number();
  }
  out["analysis.wait.late_sender_us"] = late_sender;
  out["analysis.wait.late_receiver_us"] = late_receiver;
  out["analysis.wait.coll_imbalance_us"] = coll;
  out["analysis.wait.contention_us"] = cont;
  out["analysis.wait.registration_us"] = reg;
}

}  // namespace

ReportFacts parse_report_facts(const JsonValue& doc, std::string label) {
  ReportFacts facts;
  facts.label = std::move(label);
  if (doc["schema"].as_string() != "cbmpi.run_report") {
    facts.error = facts.label + ": not a cbmpi.run_report document";
    return facts;
  }
  facts.version = static_cast<int>(doc["version"].as_int());
  facts.mode = doc["mode"].as_string();
  facts.app = doc["job"]["app"].as_string();
  facts.deployment = doc["job"]["deployment"].as_string();
  facts.policy = doc["job"]["policy"].as_string();

  auto& out = facts.scalars;
  if (doc.has("result")) {
    out["result.job_time_us"] = doc["result"]["job_time_us"].as_number();
    out["result.hca_queue_pairs"] =
        doc["result"]["hca_queue_pairs"].as_number();
  }
  if (doc.has("profile")) {
    const auto& p = doc["profile"];
    out["profile.comm_time_us"] = p["comm_time_us"].as_number();
    out["profile.compute_time_us"] = p["compute_time_us"].as_number();
    out["profile.recovery_time_us"] = p["recovery_time_us"].as_number();
    out["profile.comm_fraction"] = p["comm_fraction"].as_number();
  }
  if (doc.has("metrics")) extract_metrics(doc["metrics"], out);
  if (doc.has("reg_cache")) {
    out["reg_cache.hits"] = doc["reg_cache"]["hits"].as_number();
    out["reg_cache.misses"] = doc["reg_cache"]["misses"].as_number();
    out["reg_cache.registered_bytes"] =
        doc["reg_cache"]["registered_bytes"].as_number();
  }
  if (doc.has("cluster"))
    out["cluster.makespan_us"] = doc["cluster"]["makespan_us"].as_number();
  if (doc.has("analysis")) extract_analysis(doc["analysis"], facts);
  facts.ok = true;
  return facts;
}

ReportFacts load_report_facts(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ReportFacts facts;
    facts.label = path;
    facts.error = path + ": cannot open";
    return facts;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string parse_error;
  const JsonValue doc = JsonValue::parse(buffer.str(), &parse_error);
  if (doc.is_null()) {
    ReportFacts facts;
    facts.label = path;
    facts.error = path + ": " + parse_error;
    return facts;
  }
  return parse_report_facts(doc, path);
}

std::string render_report(const ReportFacts& facts) {
  std::ostringstream os;
  os << facts.label << ": " << facts.mode << " run report v" << facts.version
     << ", app=" << facts.app << ", deployment=" << facts.deployment
     << ", policy=" << facts.policy << "\n";
  if (!facts.has_analysis)
    os << "(no analysis section — re-run cbmpirun with --analyze --report="
       << "... for critical-path blame)\n";
  Table table({"metric", "value"});
  for (const auto& [name, value] : facts.scalars)
    table.add_row({name, Table::num(value, 3)});
  table.print(os);
  return os.str();
}

std::string render_diff(const ReportFacts& fresh, const ReportFacts& baseline) {
  std::ostringstream os;
  os << fresh.label << " vs baseline " << baseline.label << "\n";
  Table table({"metric", "this run", "baseline", "delta"});
  std::size_t shared = 0;
  for (const auto& [name, value] : fresh.scalars) {
    const auto it = baseline.scalars.find(name);
    if (it == baseline.scalars.end()) continue;
    ++shared;
    const double base = it->second;
    if (value == 0.0 && base == 0.0) continue;  // uninteresting
    std::string delta;
    if (base == 0.0) {
      delta = "new";
    } else {
      const double pct = (value - base) / base * 100.0;
      if (pct >= 0.0) delta += '+';
      delta += Table::num(pct, 1);
      delta += '%';
    }
    table.add_row({name, Table::num(value, 3), Table::num(base, 3), delta});
  }
  table.print(os);
  os << shared << " shared metrics compared\n";
  return os.str();
}

}  // namespace cbmpi::obs::analysis
