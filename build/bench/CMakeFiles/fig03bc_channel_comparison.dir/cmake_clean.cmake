file(REMOVE_RECURSE
  "CMakeFiles/fig03bc_channel_comparison.dir/fig03bc_channel_comparison.cpp.o"
  "CMakeFiles/fig03bc_channel_comparison.dir/fig03bc_channel_comparison.cpp.o.d"
  "fig03bc_channel_comparison"
  "fig03bc_channel_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03bc_channel_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
