#include "osl/namespaces.hpp"

namespace cbmpi::osl {

const char* to_string(NamespaceType type) {
  switch (type) {
    case NamespaceType::Pid: return "pid";
    case NamespaceType::Ipc: return "ipc";
    case NamespaceType::Uts: return "uts";
    case NamespaceType::Net: return "net";
  }
  return "?";
}

}  // namespace cbmpi::osl
