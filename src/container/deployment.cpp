#include "container/deployment.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cbmpi::container {

int JobPlacement::containers_on(topo::HostId host) const {
  if (heterogeneous()) {
    CBMPI_REQUIRE(host >= 0 && host < num_hosts(), "placement has no host ", host);
    return static_cast<int>(host_cpusets[static_cast<std::size_t>(host)].size());
  }
  return spec.native() ? 0 : spec.containers_per_host;
}

const std::vector<int>& JobPlacement::cpuset_of(topo::HostId host, int index) const {
  CBMPI_REQUIRE(index >= 0 && index < containers_on(host), "host ", host,
                " has no container ", index);
  if (heterogeneous())
    return host_cpusets[static_cast<std::size_t>(host)]
                       [static_cast<std::size_t>(index)];
  return container_cpusets[static_cast<std::size_t>(index)];
}

void validate_placement(const topo::Cluster& cluster, const JobPlacement& placement) {
  CBMPI_REQUIRE(!placement.slots.empty(), "placement has no ranks");
  CBMPI_REQUIRE(placement.num_hosts() <= cluster.num_hosts(), "placement spans ",
                placement.num_hosts(), " hosts, cluster has ", cluster.num_hosts());
  for (std::size_t r = 0; r < placement.slots.size(); ++r) {
    const auto& slot = placement.slots[r];
    CBMPI_REQUIRE(slot.host >= 0 && slot.host < placement.num_hosts(), "rank ", r,
                  " placed on host ", slot.host, " outside the placement's ",
                  placement.num_hosts(), " hosts");
    const auto& shape = cluster.host(slot.host).shape();
    CBMPI_REQUIRE(slot.core.socket >= 0 && slot.core.socket < shape.sockets &&
                      slot.core.core >= 0 && slot.core.core < shape.cores_per_socket,
                  "rank ", r, " pinned to nonexistent core (socket ",
                  slot.core.socket, ", core ", slot.core.core, ")");
    if (slot.container_index >= 0)
      CBMPI_REQUIRE(slot.container_index < placement.containers_on(slot.host),
                    "rank ", r, " assigned to container ", slot.container_index,
                    " but host ", slot.host, " deploys only ",
                    placement.containers_on(slot.host));
  }
  for (int h = 0; h < placement.num_hosts(); ++h) {
    const int total = cluster.host(h).shape().total_cores();
    std::vector<int> claimed;
    for (int c = 0; c < placement.containers_on(h); ++c) {
      for (const int core : placement.cpuset_of(h, c)) {
        CBMPI_REQUIRE(core >= 0 && core < total, "container ", c, " on host ", h,
                      " pins core ", core, " outside [0, ", total, ")");
        claimed.push_back(core);
      }
    }
    std::sort(claimed.begin(), claimed.end());
    const auto dup = std::adjacent_find(claimed.begin(), claimed.end());
    CBMPI_REQUIRE(dup == claimed.end(), "containers on host ", h,
                  " share core ", dup == claimed.end() ? -1 : *dup,
                  " (cpusets must be disjoint)");
  }
}

std::string DeploymentSpec::label() const {
  if (native()) return "Native";
  if (isolation == IsolationKind::VirtualMachine) {
    std::string name = std::to_string(containers_per_host) + "-VM" +
                       (containers_per_host > 1 ? "s" : "");
    if (ivshmem) name += "+ivshmem";
    return name;
  }
  if (containers_per_host == 1) return "1-Container";
  return std::to_string(containers_per_host) + "-Containers";
}

DeploymentSpec DeploymentSpec::native_hosts(int hosts, int procs_per_host) {
  DeploymentSpec spec;
  spec.num_hosts = hosts;
  spec.containers_per_host = 0;
  spec.procs_per_host = procs_per_host;
  return spec;
}

DeploymentSpec DeploymentSpec::containers(int hosts, int containers_per_host,
                                          int procs_per_host) {
  DeploymentSpec spec;
  spec.num_hosts = hosts;
  spec.containers_per_host = containers_per_host;
  spec.procs_per_host = procs_per_host;
  return spec;
}

DeploymentSpec DeploymentSpec::virtual_machines(int hosts, int vms_per_host,
                                                int procs_per_host,
                                                bool with_ivshmem) {
  DeploymentSpec spec;
  spec.num_hosts = hosts;
  spec.containers_per_host = vms_per_host;
  spec.procs_per_host = procs_per_host;
  spec.isolation = IsolationKind::VirtualMachine;
  spec.ivshmem = with_ivshmem;
  return spec;
}

namespace {

/// Assigns each container a contiguous run of cores subject to the socket
/// policy. Containers never share cores (the paper pins containers to
/// disjoint cores to avoid competition).
std::vector<std::vector<int>> carve_cpusets(const topo::HostShape& shape,
                                            const DeploymentSpec& spec) {
  const int n_cont = spec.containers_per_host;
  const int per_cont = spec.procs_per_container();
  std::vector<std::vector<int>> sets(static_cast<std::size_t>(n_cont));

  auto flat = [&](int socket, int core) { return socket * shape.cores_per_socket + core; };

  switch (spec.socket_policy) {
    case SocketPolicy::Pack: {
      int next = 0;
      for (int c = 0; c < n_cont; ++c) {
        for (int p = 0; p < per_cont; ++p)
          sets[static_cast<std::size_t>(c)].push_back(next++ % shape.total_cores());
      }
      break;
    }
    case SocketPolicy::SameSocket: {
      int next = 0;
      for (int c = 0; c < n_cont; ++c)
        for (int p = 0; p < per_cont; ++p)
          sets[static_cast<std::size_t>(c)].push_back(
              flat(0, next++ % shape.cores_per_socket));
      break;
    }
    case SocketPolicy::DistinctSockets: {
      std::vector<int> next_core(static_cast<std::size_t>(shape.sockets), 0);
      for (int c = 0; c < n_cont; ++c) {
        const int socket = c % shape.sockets;
        auto& cursor = next_core[static_cast<std::size_t>(socket)];
        for (int p = 0; p < per_cont; ++p)
          sets[static_cast<std::size_t>(c)].push_back(
              flat(socket, cursor++ % shape.cores_per_socket));
      }
      break;
    }
  }
  return sets;
}

}  // namespace

JobPlacement plan_deployment(const topo::Cluster& cluster, const DeploymentSpec& spec) {
  CBMPI_REQUIRE(spec.num_hosts > 0 && spec.num_hosts <= cluster.num_hosts(),
                "deployment needs ", spec.num_hosts, " hosts, cluster has ",
                cluster.num_hosts());
  CBMPI_REQUIRE(spec.procs_per_host > 0, "procs_per_host must be positive");
  if (!spec.native()) {
    CBMPI_REQUIRE(spec.procs_per_host % spec.containers_per_host == 0,
                  "procs_per_host (", spec.procs_per_host,
                  ") must divide evenly among ", spec.containers_per_host,
                  " containers");
  }

  const auto& shape = cluster.host(0).shape();
  JobPlacement placement;
  placement.spec = spec;
  if (!spec.native()) placement.container_cpusets = carve_cpusets(shape, spec);

  placement.slots.reserve(static_cast<std::size_t>(spec.total_ranks()));
  for (int h = 0; h < spec.num_hosts; ++h) {
    for (int p = 0; p < spec.procs_per_host; ++p) {
      RankSlot slot;
      slot.host = h;
      if (spec.native()) {
        slot.container_index = -1;
        slot.core_slot = p;
        int flat = p % shape.total_cores();
        switch (spec.socket_policy) {
          case SocketPolicy::Pack:
            break;  // consecutive cores fill socket 0 first
          case SocketPolicy::SameSocket:
            flat = p % shape.cores_per_socket;
            break;
          case SocketPolicy::DistinctSockets:
            flat = (p % shape.sockets) * shape.cores_per_socket +
                   (p / shape.sockets) % shape.cores_per_socket;
            break;
        }
        slot.core = cluster.host(h).core_at(flat);
      } else {
        const int per_cont = spec.procs_per_container();
        slot.container_index = p / per_cont;
        slot.core_slot = p % per_cont;
        const auto& cpuset =
            placement.container_cpusets[static_cast<std::size_t>(slot.container_index)];
        slot.core = cluster.host(h).core_at(
            cpuset[static_cast<std::size_t>(slot.core_slot) % cpuset.size()]);
      }
      placement.slots.push_back(slot);
    }
  }
  return placement;
}

}  // namespace cbmpi::container
