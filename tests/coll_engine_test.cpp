// The collective-algorithm engine: every algorithm of every collective gives
// the reference result at every containers-per-host shape, the tuning-file
// parser round-trips and rejects garbage with line numbers, and selection
// precedence (env pin > file entry > shipped default > heuristic) holds.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "mpi/coll/engine.hpp"
#include "mpi/runtime.hpp"

namespace cbmpi {
namespace {

using container::DeploymentSpec;
using fabric::LocalityPolicy;
using mpi::JobConfig;
using mpi::ReduceOp;
using mpi::run_job;

JobConfig config_for(int hosts, int cph, int procs) {
  JobConfig cfg;
  cfg.deployment = DeploymentSpec::containers(hosts, cph, procs);
  cfg.policy = LocalityPolicy::ContainerAware;
  return cfg;
}

// ---------------------------------------------------------------------------
// Result equivalence: each algorithm is pinned in turn via the tuning table
// and must reproduce the analytically known result (int payloads, so no
// reduction-order ambiguity). Two deployments cover pow2 (8) and non-pow2
// (9) rank counts — the latter exercises the deterministic downgrades
// (Rabenseifner / recursive doubling -> reduce_bcast, etc.).
// ---------------------------------------------------------------------------

class CollEngineShapes : public testing::TestWithParam<int> {};  // cph

void check_collective(const JobConfig& base, coll::Coll c, coll::Algo algo,
                      std::size_t elems) {
  auto cfg = base;
  cfg.coll_tuning.set_override(c, algo);
  const int n = cfg.deployment.total_ranks();
  run_job(cfg, [&, n](mpi::Process& p) {
    auto& comm = p.world();
    const int r = p.rank();
    switch (c) {
      case coll::Coll::Barrier:
        for (int i = 0; i < 3; ++i) comm.barrier();
        break;
      case coll::Coll::Bcast: {
        const int root = 1 % n;
        std::vector<int> data(elems, -1);
        if (r == root)
          for (std::size_t i = 0; i < elems; ++i)
            data[i] = static_cast<int>(i) * 7 + 3;
        comm.bcast(std::span<int>(data), root);
        for (std::size_t i = 0; i < elems; ++i)
          ASSERT_EQ(data[i], static_cast<int>(i) * 7 + 3);
        break;
      }
      case coll::Coll::Reduce: {
        const int root = n - 1;
        std::vector<int> in(elems), out(elems);
        for (std::size_t i = 0; i < elems; ++i) in[i] = r + static_cast<int>(i);
        comm.reduce(std::span<const int>(in), std::span<int>(out),
                    ReduceOp::Sum, root);
        if (r == root) {
          for (std::size_t i = 0; i < elems; ++i)
            ASSERT_EQ(out[i], n * (n - 1) / 2 + n * static_cast<int>(i));
        }
        break;
      }
      case coll::Coll::Allreduce: {
        std::vector<int> in(elems), out(elems);
        for (std::size_t i = 0; i < elems; ++i) in[i] = r + static_cast<int>(i);
        comm.allreduce(std::span<const int>(in), std::span<int>(out),
                       ReduceOp::Sum);
        for (std::size_t i = 0; i < elems; ++i)
          ASSERT_EQ(out[i], n * (n - 1) / 2 + n * static_cast<int>(i));
        break;
      }
      case coll::Coll::Allgather: {
        std::vector<int> mine(elems), all(elems * static_cast<std::size_t>(n));
        for (std::size_t i = 0; i < elems; ++i)
          mine[i] = r * 1000 + static_cast<int>(i);
        comm.allgather(std::span<const int>(mine), std::span<int>(all));
        for (int peer = 0; peer < n; ++peer)
          for (std::size_t i = 0; i < elems; ++i)
            ASSERT_EQ(all[static_cast<std::size_t>(peer) * elems + i],
                      peer * 1000 + static_cast<int>(i));
        break;
      }
      case coll::Coll::Alltoall: {
        std::vector<int> send(elems * static_cast<std::size_t>(n));
        std::vector<int> recv(send.size());
        for (int peer = 0; peer < n; ++peer)
          for (std::size_t i = 0; i < elems; ++i)
            send[static_cast<std::size_t>(peer) * elems + i] =
                r * 10000 + peer * 100 + static_cast<int>(i);
        comm.alltoall(std::span<const int>(send), std::span<int>(recv));
        for (int peer = 0; peer < n; ++peer)
          for (std::size_t i = 0; i < elems; ++i)
            ASSERT_EQ(recv[static_cast<std::size_t>(peer) * elems + i],
                      peer * 10000 + r * 100 + static_cast<int>(i));
        break;
      }
      case coll::Coll::Count_:
        break;
    }
  });
}

TEST_P(CollEngineShapes, EveryAlgorithmMatchesReference) {
  const int cph = GetParam();
  // 2x4 = 8 ranks (pow2) and 3x4 = 12 ranks (non-pow2, forces the downgrade
  // paths); 16 and 3000 elements straddle the small/large size classes.
  for (const auto& base :
       {config_for(2, cph, 4), config_for(3, cph, 4)}) {
    for (std::size_t ci = 0; ci < coll::kColls; ++ci) {
      const auto c = static_cast<coll::Coll>(ci);
      for (const coll::Algo algo : coll::algorithms_for(c)) {
        if (algo == coll::Algo::Auto) continue;
        for (const std::size_t elems : {std::size_t{16}, std::size_t{3000}}) {
          SCOPED_TRACE(std::string(to_string(c)) + "/" + to_string(algo) +
                       " elems=" + std::to_string(elems) + " ranks=" +
                       std::to_string(base.deployment.total_ranks()) +
                       " cph=" + std::to_string(cph));
          check_collective(base, c, algo, elems);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ContainersPerHost, CollEngineShapes,
                         testing::Values(1, 2, 4));

// ---------------------------------------------------------------------------
// Selection is observable: the pinned algorithm shows up in the profile's
// per-collective algorithm counters and as coll-algo trace events.
// ---------------------------------------------------------------------------

TEST(CollEngineObservability, PinnedAlgorithmShowsInProfileAndTrace) {
  auto cfg = config_for(2, 2, 4);
  cfg.coll_tuning.set_override(coll::Coll::Bcast, coll::Algo::FlatTree);
  cfg.record_trace = true;
  const auto result = run_job(cfg, [](mpi::Process& p) {
    std::vector<int> data(64, p.rank() == 0 ? 7 : 0);
    p.world().bcast(std::span<int>(data), 0);
  });
  EXPECT_EQ(result.profile.total.coll_algo(coll::Coll::Bcast,
                                           coll::Algo::FlatTree),
            8u);  // one per rank
  EXPECT_EQ(result.profile.total.coll_algo(coll::Coll::Bcast,
                                           coll::Algo::TwoLevel),
            0u);
  bool saw_event = false;
  for (const auto& e : result.trace)
    if (e.kind == sim::TraceKind::CollAlgo && e.note == "bcast/flat_tree")
      saw_event = true;
  EXPECT_TRUE(saw_event);
}

// ---------------------------------------------------------------------------
// Parser: round-trips, line-numbered rejection, precedence.
// ---------------------------------------------------------------------------

TEST(CollTuningTable, SerializeParseRoundTrip) {
  const auto shipped = coll::TuningTable::container_defaults();
  const auto reparsed = coll::TuningTable::parse(shipped.serialize());
  EXPECT_EQ(reparsed.serialize(), shipped.serialize());

  const std::string custom =
      "# comment line\n"
      "bcast 2-8 1-4 1K-64K binomial\n"
      "allreduce 4- * 32K- rabenseifner  # trailing comment\n"
      "alltoall * -2 -4095 bruck\n"
      "barrier 2 * * dissemination\n";
  const auto parsed = coll::TuningTable::parse(custom);
  ASSERT_EQ(parsed.entries().size(), 4u);
  EXPECT_EQ(coll::TuningTable::parse(parsed.serialize()).serialize(),
            parsed.serialize());
}

TEST(CollTuningTable, RejectsMalformedEntriesWithLineNumbers) {
  const auto expect_error = [](const std::string& text,
                               const std::string& fragment) {
    try {
      coll::TuningTable::parse(text, "t.conf");
      FAIL() << "expected parse error for: " << text;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << "message was: " << e.what();
    }
  };
  expect_error("bcast * *\n", "t.conf:1: expected 5 fields");
  expect_error("\nbcast * * * binomial extra\n", "t.conf:2: trailing token 'extra'");
  expect_error("frobnicate * * * binomial\n", "t.conf:1: unknown collective");
  expect_error("bcast 8-2 * * binomial\n", "t.conf:1: bad ranks range");
  expect_error("bcast * x * binomial\n", "t.conf:1: bad containers/host range");
  expect_error("bcast * * 1Q binomial\n", "t.conf:1: bad msg-size range");
  expect_error("bcast * * * warp_drive\n", "t.conf:1: unknown algorithm");
  expect_error("bcast * * * ring\n", "t.conf:1: algorithm 'ring' is not valid");
  expect_error("ok-is-not-checked-first * *\n# line 2\nbcast * * * pairwise\n",
               "t.conf:1:");
}

TEST(CollTuningTable, LastMatchWinsAndRangesFilter) {
  const auto t = coll::TuningTable::parse(
      "bcast * * * binomial\n"
      "bcast * * 64K- vandegeijn\n"
      "bcast 2-4 * * flat_tree\n");
  // ranks=8: last matching row for small sizes is the first one.
  EXPECT_EQ(t.select(coll::Coll::Bcast, 1_KiB, 8, 1), coll::Algo::Binomial);
  EXPECT_EQ(t.select(coll::Coll::Bcast, 64_KiB, 8, 1), coll::Algo::VanDeGeijn);
  // ranks=4: the last row shadows both earlier ones.
  EXPECT_EQ(t.select(coll::Coll::Bcast, 64_KiB, 4, 1), coll::Algo::FlatTree);
  // no entry for other collectives -> Auto.
  EXPECT_EQ(t.select(coll::Coll::Reduce, 1_KiB, 8, 1), coll::Algo::Auto);
}

TEST(CollTuningTable, EnvOverridesBeatFileEntries) {
  auto t = coll::TuningTable::parse("allreduce * * * reduce_bcast\n");
  ASSERT_EQ(setenv("CBMPI_ALLREDUCE_ALGORITHM", "recursive_doubling", 1), 0);
  t.apply_env();
  unsetenv("CBMPI_ALLREDUCE_ALGORITHM");
  EXPECT_EQ(t.select(coll::Coll::Allreduce, 1_MiB, 64, 4),
            coll::Algo::RecursiveDoubling);
  // Clearing the pin (Auto) re-exposes the file entry.
  t.set_override(coll::Coll::Allreduce, coll::Algo::Auto);
  EXPECT_EQ(t.select(coll::Coll::Allreduce, 1_MiB, 64, 4),
            coll::Algo::ReduceBcast);
}

TEST(CollTuningTable, EnvRejectsAlgorithmsInvalidForTheCollective) {
  auto t = coll::TuningTable::container_defaults();
  ASSERT_EQ(setenv("CBMPI_BCAST_ALGORITHM", "ring", 1), 0);
  EXPECT_THROW(t.apply_env(), Error);
  unsetenv("CBMPI_BCAST_ALGORITHM");
}

TEST(CollEngineEndToEnd, EnvPinBeatsFileEntryInsideAJob) {
  auto cfg = config_for(2, 2, 4);
  cfg.coll_tuning.merge(
      coll::TuningTable::parse("allreduce * * * reduce_bcast\n"));
  ASSERT_EQ(setenv("CBMPI_ALLREDUCE_ALGORITHM", "recursive_doubling", 1), 0);
  const auto result = run_job(cfg, [](mpi::Process& p) {
    const auto sum = p.world().allreduce_value<std::int64_t>(1, ReduceOp::Sum);
    ASSERT_EQ(sum, p.size());
  });
  unsetenv("CBMPI_ALLREDUCE_ALGORITHM");
  EXPECT_GT(result.profile.total.coll_algo(coll::Coll::Allreduce,
                                           coll::Algo::RecursiveDoubling),
            0u);
  EXPECT_EQ(result.profile.total.coll_algo(coll::Coll::Allreduce,
                                           coll::Algo::ReduceBcast),
            0u);
}

// ---------------------------------------------------------------------------
// Engine resolution: TwoLevel demotes to the heuristic when the hierarchy is
// unavailable, and the heuristic preserves the pre-engine thresholds.
// ---------------------------------------------------------------------------

TEST(CollEngine, TwoLevelDemotesToHeuristicWhenUnavailable) {
  const coll::Engine engine(coll::TuningTable::container_defaults(),
                            fabric::TuningParams{}, 2);
  EXPECT_EQ(engine.choose(coll::Coll::Barrier, 0, 8, true),
            coll::Algo::TwoLevel);
  EXPECT_EQ(engine.choose(coll::Coll::Barrier, 0, 8, false),
            coll::Algo::Dissemination);
}

TEST(CollEngine, EmptyTableFallsBackToLegacyHeuristic) {
  // Bcast heuristic: binomial small, van de Geijn large (>= threshold, >= 4
  // ranks), never van de Geijn on tiny communicators.
  const fabric::TuningParams params;
  const coll::Engine engine(coll::TuningTable{}, params, 1);
  EXPECT_EQ(engine.choose(coll::Coll::Bcast, 1_KiB, 8, false),
            coll::Algo::Binomial);
  EXPECT_EQ(engine.choose(coll::Coll::Bcast, params.bcast_large_threshold, 8,
                          false),
            coll::Algo::VanDeGeijn);
  EXPECT_EQ(engine.choose(coll::Coll::Bcast, params.bcast_large_threshold, 2,
                          false),
            coll::Algo::Binomial);
  EXPECT_EQ(engine.choose(coll::Coll::Allreduce, 1_KiB, 8, false),
            coll::Algo::RecursiveDoubling);
  EXPECT_EQ(engine.choose(coll::Coll::Allreduce, 1_KiB, 6, false),
            coll::Algo::ReduceBcast);  // non-pow2
  EXPECT_EQ(engine.choose(coll::Coll::Allreduce,
                          params.allreduce_large_threshold, 8, false),
            coll::Algo::Rabenseifner);
  EXPECT_EQ(engine.choose(coll::Coll::Allgather, 1_KiB, 8, false),
            coll::Algo::Ring);
  EXPECT_EQ(engine.choose(coll::Coll::Alltoall, 1_KiB, 8, false),
            coll::Algo::Pairwise);
}

}  // namespace
}  // namespace cbmpi
