file(REMOVE_RECURSE
  "CMakeFiles/onesided_ring.dir/onesided_ring.cpp.o"
  "CMakeFiles/onesided_ring.dir/onesided_ring.cpp.o.d"
  "onesided_ring"
  "onesided_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onesided_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
