#include "apps/graph500/validate.hpp"

#include <algorithm>

namespace cbmpi::apps::graph500 {

ValidationReport validate_bfs(mpi::Process& p, const DistGraph& graph,
                              const BfsResult& result) {
  auto& comm = p.world();
  const int nranks = comm.size();
  const int me = comm.rank();

  ValidationReport report;

  // --- check 1: root sanity -------------------------------------------------
  if (graph.owner(result.root) == me) {
    const std::uint64_t local_root = graph.to_local(result.root);
    if (result.parent[local_root] != result.root ||
        result.level[local_root] != 0)
      ++report.bad_root;
  }

  // --- check 3 (local): tree edges exist, and collect level queries ---------
  // For every reached non-root vertex v, ask owner(parent) for parent's level.
  std::vector<std::vector<std::uint64_t>> queries(
      static_cast<std::size_t>(nranks));  // parent global ids, per owner
  std::vector<std::vector<std::uint64_t>> query_vertex(
      static_cast<std::size_t>(nranks));  // matching local v (for level check)

  for (std::uint64_t local = 0; local < graph.local_vertices(); ++local) {
    const std::uint64_t parent = result.parent[local];
    if (parent == kUnreached) continue;
    const std::uint64_t global_v = graph.to_global(local);
    if (global_v == result.root) continue;

    const auto neighbors = graph.neighbors(local);
    if (std::find(neighbors.begin(), neighbors.end(), parent) == neighbors.end())
      ++report.missing_edges;

    const int owner = graph.owner(parent);
    queries[static_cast<std::size_t>(owner)].push_back(parent);
    query_vertex[static_cast<std::size_t>(owner)].push_back(local);
  }

  // --- check 2: distributed parent-level queries -----------------------------
  std::vector<int> send_counts(static_cast<std::size_t>(nranks), 0);
  std::vector<int> send_displs(static_cast<std::size_t>(nranks), 0);
  for (int r = 0; r < nranks; ++r)
    send_counts[static_cast<std::size_t>(r)] =
        static_cast<int>(queries[static_cast<std::size_t>(r)].size());
  for (int r = 1; r < nranks; ++r)
    send_displs[static_cast<std::size_t>(r)] =
        send_displs[static_cast<std::size_t>(r - 1)] +
        send_counts[static_cast<std::size_t>(r - 1)];

  std::vector<std::uint64_t> send_buf(
      static_cast<std::size_t>(send_displs.back() + send_counts.back()));
  for (int r = 0; r < nranks; ++r)
    std::copy(queries[static_cast<std::size_t>(r)].begin(),
              queries[static_cast<std::size_t>(r)].end(),
              send_buf.begin() + send_displs[static_cast<std::size_t>(r)]);

  std::vector<int> recv_counts(static_cast<std::size_t>(nranks), 0);
  comm.alltoall(std::span<const int>(send_counts), std::span<int>(recv_counts));
  std::vector<int> recv_displs(static_cast<std::size_t>(nranks), 0);
  for (int r = 1; r < nranks; ++r)
    recv_displs[static_cast<std::size_t>(r)] =
        recv_displs[static_cast<std::size_t>(r - 1)] +
        recv_counts[static_cast<std::size_t>(r - 1)];
  std::vector<std::uint64_t> recv_buf(
      static_cast<std::size_t>(recv_displs.back() + recv_counts.back()));

  comm.alltoallv(std::span<const std::uint64_t>(send_buf),
                 std::span<const int>(send_counts), std::span<const int>(send_displs),
                 std::span<std::uint64_t>(recv_buf), std::span<const int>(recv_counts),
                 std::span<const int>(recv_displs));

  // Answer with levels (reuse the same counts/displacements shape).
  std::vector<std::int32_t> answers(recv_buf.size());
  for (std::size_t i = 0; i < recv_buf.size(); ++i)
    answers[i] = result.level[graph.to_local(recv_buf[i])];

  std::vector<std::int32_t> level_replies(send_buf.size());
  comm.alltoallv(std::span<const std::int32_t>(answers),
                 std::span<const int>(recv_counts), std::span<const int>(recv_displs),
                 std::span<std::int32_t>(level_replies),
                 std::span<const int>(send_counts), std::span<const int>(send_displs));

  for (int r = 0; r < nranks; ++r) {
    const auto base = static_cast<std::size_t>(send_displs[static_cast<std::size_t>(r)]);
    const auto& verts = query_vertex[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < verts.size(); ++i) {
      const std::int32_t parent_level = level_replies[base + i];
      const std::int32_t my_level = result.level[verts[i]];
      if (parent_level < 0)
        ++report.unreached_parents;
      else if (my_level != parent_level + 1)
        ++report.bad_levels;
    }
  }

  // --- check 4: reached count matches ----------------------------------------
  std::uint64_t local_reached = 0;
  for (std::uint64_t local = 0; local < graph.local_vertices(); ++local)
    if (result.parent[local] != kUnreached) ++local_reached;
  const auto global_reached = static_cast<std::uint64_t>(comm.allreduce_value(
      static_cast<std::int64_t>(local_reached), mpi::ReduceOp::Sum));
  if (global_reached != result.visited) ++report.count_mismatch;

  // --- aggregate -------------------------------------------------------------
  std::uint64_t flaws[5] = {report.bad_root, report.bad_levels, report.missing_edges,
                            report.unreached_parents, report.count_mismatch};
  std::uint64_t total[5] = {};
  comm.allreduce(std::span<const std::uint64_t>(flaws, 5),
                 std::span<std::uint64_t>(total, 5), mpi::ReduceOp::Sum);
  report.bad_root = total[0];
  report.bad_levels = total[1];
  report.missing_edges = total[2];
  report.unreached_parents = total[3];
  report.count_mismatch = total[4];
  report.ok = total[0] + total[1] + total[2] + total[3] + total[4] == 0;
  return report;
}

}  // namespace cbmpi::apps::graph500
