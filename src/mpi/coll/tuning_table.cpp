#include "mpi/coll/tuning_table.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "fabric/tuning.hpp"

namespace cbmpi::coll {

namespace {

// Parses "*", "N", "A-B", "A-" or "-B" into inclusive [lo, hi]. `parse_one`
// converts a single bound token; returns false on any malformed token.
template <typename T, typename ParseOne>
bool parse_range(const std::string& token, T full_lo, T full_hi, T& lo, T& hi,
                 ParseOne parse_one) {
  lo = full_lo;
  hi = full_hi;
  if (token == "*") return true;
  const auto dash = token.find('-');
  if (dash == std::string::npos) {
    if (!parse_one(token, lo)) return false;
    hi = lo;
    return true;
  }
  const std::string left = token.substr(0, dash);
  const std::string right = token.substr(dash + 1);
  if (left.empty() && right.empty()) return false;
  if (!left.empty() && !parse_one(left, lo)) return false;
  if (!right.empty() && !parse_one(right, hi)) return false;
  return lo <= hi;
}

bool parse_int(const std::string& token, int& out) {
  if (token.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    if (value > 1'000'000'000) return false;
  }
  out = static_cast<int>(value);
  return true;
}

bool parse_size(const std::string& token, Bytes& out) {
  if (token.empty()) return false;
  Bytes multiplier = 1;
  std::string digits = token;
  switch (token.back()) {
    case 'K': case 'k': multiplier = 1024; break;
    case 'M': case 'm': multiplier = 1024 * 1024; break;
    case 'G': case 'g': multiplier = 1024 * 1024 * 1024; break;
    default: break;
  }
  if (multiplier != 1) digits.pop_back();
  if (digits.empty()) return false;
  Bytes value = 0;
  for (const char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    value = value * 10 + static_cast<Bytes>(c - '0');
    if (value > (Bytes{1} << 50)) return false;
  }
  out = value * multiplier;
  return true;
}

[[noreturn]] void fail(const std::string& origin, int line,
                       const std::string& what) {
  std::ostringstream os;
  os << origin << ":" << line << ": " << what;
  throw Error(os.str());
}

std::string format_bound(Bytes n) {
  // Reuses the bench formatter ("8K", "1M", plain "600") — the parser above
  // accepts all of its outputs, so serialize() round-trips.
  return format_size(n);
}

}  // namespace

TuningTable TuningTable::container_defaults() {
  // Defaults for container deployments, validated by the
  // `ablation_collectives` engine sweep (section (d) / --autotune) across
  // {1, 2, 4} containers per host:
  //
  //   * The leader-based hierarchy wins where a root concentrates traffic —
  //     barrier, bcast below the large-message regime, and reduce — because
  //     the local phase stays on the recovered SHM/CMA channels.
  //   * The symmetric bandwidth algorithms win everywhere else: with
  //     block-contiguous placement their low-order exchange rounds are
  //     already intra-host, so the extra leader hop only adds latency
  //     (ring allgather, recursive-doubling / Rabenseifner allreduce split
  //     at the channel layer's allreduce_large_threshold, van de Geijn
  //     bcast past bcast_large_threshold).
  //   * Alltoall has no hierarchical variant; the fully concurrent spread
  //     beats Bruck and pairwise at both probed size classes.
  //
  // When the locality detector finds no co-located ranks the engine demotes
  // the two_level rows to the flat Auto heuristic, which reproduces the
  // pre-engine behaviour.
  TuningTable t;
  const auto all = [](Coll c, Algo a) {
    TuningEntry e;
    e.coll = c;
    e.algo = a;
    return e;
  };
  const fabric::TuningParams params;
  t.add(all(Coll::Barrier, Algo::TwoLevel));
  t.add(all(Coll::Reduce, Algo::TwoLevel));
  t.add(all(Coll::Allgather, Algo::Ring));
  t.add(all(Coll::Alltoall, Algo::Spread));
  {
    TuningEntry small = all(Coll::Bcast, Algo::TwoLevel);
    small.max_size = params.bcast_large_threshold - 1;
    t.add(small);
    TuningEntry large = all(Coll::Bcast, Algo::VanDeGeijn);
    large.min_size = params.bcast_large_threshold;
    t.add(large);
  }
  {
    TuningEntry small = all(Coll::Allreduce, Algo::RecursiveDoubling);
    small.max_size = params.allreduce_large_threshold - 1;
    t.add(small);
    TuningEntry large = all(Coll::Allreduce, Algo::Rabenseifner);
    large.min_size = params.allreduce_large_threshold;
    t.add(large);
  }
  return t;
}

TuningTable TuningTable::parse(const std::string& text,
                               const std::string& origin) {
  TuningTable table;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string coll_tok, ranks_tok, cph_tok, size_tok, algo_tok, extra;
    if (!(fields >> coll_tok)) continue;  // blank / comment-only line
    if (!(fields >> ranks_tok >> cph_tok >> size_tok >> algo_tok)) {
      fail(origin, lineno,
           "expected 5 fields: <collective> <ranks> <containers/host> "
           "<msg-size> <algorithm>");
    }
    if (fields >> extra) {
      fail(origin, lineno, "trailing token '" + extra + "'");
    }
    TuningEntry entry;
    const auto coll = parse_coll(coll_tok);
    if (!coll) fail(origin, lineno, "unknown collective '" + coll_tok + "'");
    entry.coll = *coll;
    if (!parse_range(ranks_tok, 0, std::numeric_limits<int>::max(),
                     entry.min_ranks, entry.max_ranks, parse_int)) {
      fail(origin, lineno, "bad ranks range '" + ranks_tok + "'");
    }
    if (!parse_range(cph_tok, 0, std::numeric_limits<int>::max(),
                     entry.min_cph, entry.max_cph, parse_int)) {
      fail(origin, lineno, "bad containers/host range '" + cph_tok + "'");
    }
    if (!parse_range(size_tok, Bytes{0}, std::numeric_limits<Bytes>::max(),
                     entry.min_size, entry.max_size, parse_size)) {
      fail(origin, lineno, "bad msg-size range '" + size_tok + "'");
    }
    const auto algo = parse_algo(algo_tok);
    if (!algo) fail(origin, lineno, "unknown algorithm '" + algo_tok + "'");
    if (!valid_for(entry.coll, *algo)) {
      fail(origin, lineno, std::string("algorithm '") + to_string(*algo) +
                               "' is not valid for collective '" +
                               to_string(entry.coll) + "'");
    }
    entry.algo = *algo;
    table.add(entry);
  }
  return table;
}

TuningTable TuningTable::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open tuning file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str(), path);
}

void TuningTable::merge(const TuningTable& other) {
  entries_.insert(entries_.end(), other.entries_.begin(), other.entries_.end());
  for (std::size_t i = 0; i < kColls; ++i) {
    if (other.overrides_[i]) overrides_[i] = other.overrides_[i];
  }
}

void TuningTable::set_override(Coll coll, Algo algo) {
  CBMPI_REQUIRE(valid_for(coll, algo), "algorithm ", to_string(algo),
                " is not valid for collective ", to_string(coll));
  auto& slot = overrides_[static_cast<std::size_t>(coll)];
  if (algo == Algo::Auto) {
    slot.reset();
  } else {
    slot = algo;
  }
}

void TuningTable::apply_env() {
  for (std::size_t i = 0; i < kColls; ++i) {
    const auto coll = static_cast<Coll>(i);
    const char* value = std::getenv(env_var_for(coll));
    if (value == nullptr || *value == '\0') continue;
    const auto algo = parse_algo(value);
    if (!algo || !valid_for(coll, *algo)) {
      throw Error(std::string(env_var_for(coll)) + ": unknown or invalid " +
                  "algorithm '" + value + "' (valid: see `cbmpirun --help`)");
    }
    set_override(coll, *algo);
  }
}

Algo TuningTable::select(Coll coll, Bytes size, int ranks, int cph) const {
  if (const auto pinned = overrides_[static_cast<std::size_t>(coll)]) {
    return *pinned;
  }
  Algo chosen = Algo::Auto;
  for (const TuningEntry& e : entries_) {
    if (e.matches(coll, size, ranks, cph)) chosen = e.algo;  // last match wins
  }
  return chosen;
}

std::optional<Algo> TuningTable::override_for(Coll coll) const {
  return overrides_[static_cast<std::size_t>(coll)];
}

std::string TuningTable::serialize() const {
  std::ostringstream os;
  os << "# collective  ranks  containers/host  msg-size  algorithm\n";
  const auto int_range = [](int lo, int hi) -> std::string {
    const int max = std::numeric_limits<int>::max();
    if (lo <= 0 && hi == max) return "*";
    if (lo == hi) return std::to_string(lo);
    std::string out;
    if (lo > 0) out += std::to_string(lo);
    out += '-';
    if (hi != max) out += std::to_string(hi);
    return out;
  };
  const auto size_range = [](Bytes lo, Bytes hi) -> std::string {
    const Bytes max = std::numeric_limits<Bytes>::max();
    if (lo == 0 && hi == max) return "*";
    if (lo == hi) return format_bound(lo);
    std::string out;
    if (lo != 0) out += format_bound(lo);
    out += '-';
    if (hi != max) out += format_bound(hi);
    return out;
  };
  for (const TuningEntry& e : entries_) {
    os << to_string(e.coll) << "  " << int_range(e.min_ranks, e.max_ranks)
       << "  " << int_range(e.min_cph, e.max_cph) << "  "
       << size_range(e.min_size, e.max_size) << "  " << to_string(e.algo)
       << "\n";
  }
  return os.str();
}

}  // namespace cbmpi::coll
