#include "mpi/window.hpp"

#include <cstring>

#include "common/rng.hpp"

namespace cbmpi::mpi {

namespace {
/// CPU cost of a flush that has nothing left to wait for.
constexpr Micros kFlushOverhead = 0.05;
}  // namespace

WindowHandle::WindowHandle(Communicator& comm, std::span<std::byte> local,
                           Bytes elem_size)
    : comm_(&comm),
      pending_(static_cast<std::size_t>(comm.size()), 0.0),
      held_(static_cast<std::size_t>(comm.size()), 0) {
  const ProfiledCall prof_scope(comm.engine(), prof::CallKind::WinCreate);
  auto& job = comm.engine().job();
  const std::uint64_t window_id =
      mix64(comm.id() ^ mix64(comm.next_window_ordinal() ^ 0x9e3779b9ULL));
  {
    const std::scoped_lock lock(job.windows_mutex);
    auto& slot = job.windows[window_id];
    if (!slot) {
      slot = std::make_shared<WindowInfo>();
      slot->elem_size = elem_size;
      slot->spans.resize(static_cast<std::size_t>(comm.size()));
      slot->locks.resize(static_cast<std::size_t>(comm.size()));
      for (auto& l : slot->locks) l = std::make_unique<std::mutex>();
      slot->epoch_locks.resize(static_cast<std::size_t>(comm.size()));
      for (auto& l : slot->epoch_locks) l = std::make_unique<std::shared_mutex>();
    }
    CBMPI_REQUIRE(slot->elem_size == elem_size, "window element size mismatch");
    slot->spans[static_cast<std::size_t>(comm.rank())] = local;
    info_ = slot;
  }
  // All ranks must have registered their memory before any RMA starts.
  comm_->raw_barrier();
}

std::span<std::byte> WindowHandle::target_span(int target, Bytes byte_offset,
                                               Bytes size) {
  CBMPI_REQUIRE(target >= 0 && target < comm_->size(), "RMA target out of range");
  auto span = info_->spans[static_cast<std::size_t>(target)];
  CBMPI_REQUIRE(span.data() != nullptr, "RMA target window not registered");
  CBMPI_REQUIRE(byte_offset + size <= span.size(),
                "RMA access outside the target window: offset ", byte_offset,
                " size ", size, " window ", span.size());
  return span.subspan(byte_offset, size);
}

fabric::OneSidedCosts WindowHandle::account_op(int target, Bytes size,
                                               prof::CallKind kind) {
  auto& engine = comm_->engine();
  auto& job = engine.job();
  const int me_world = engine.world_rank();
  const int target_world = comm_->to_world(target);
  const auto decision = job.selector->select(me_world, target_world, size);
  engine.profile().add_channel_op(decision.channel, size);

  fabric::OneSidedCosts costs;
  switch (decision.channel) {
    case fabric::ChannelKind::Shm:
      costs = job.shm->one_sided_costs(size, decision.same_socket);
      break;
    case fabric::ChannelKind::Cma:
      costs = job.cma->one_sided_costs(size, decision.same_socket);
      break;
    case fabric::ChannelKind::Hca: {
      job.hca->ensure_connected(me_world, target_world);
      // One-sided ops see the routed path latency and static VF-capped
      // bandwidth; they carry no flow identity, so the contention engine
      // never stretches them (see HcaChannel::one_sided_costs).
      net::TransferCtx ctx;
      const net::TransferCtx* ctxp = nullptr;
      if (job.fabric != nullptr && !decision.loopback) {
        ctx.src_host = job.rank_phys_host[static_cast<std::size_t>(me_world)];
        ctx.dst_host = job.rank_phys_host[static_cast<std::size_t>(target_world)];
        if (ctx.src_host != ctx.dst_host) ctxp = &ctx;
      }
      costs = job.hca->one_sided_costs(size, decision.loopback, decision.sriov, ctxp);
      break;
    }
  }

  auto& clock = engine.clock();
  const Micros issue = clock.now();
  clock.advance(costs.gap);
  engine.profile().add_call(kind, costs.gap);
  auto& last = pending_[static_cast<std::size_t>(target)];
  last = std::max(last, issue + costs.latency);
  if (job.trace)
    job.trace->record({kind == prof::CallKind::Get ? sim::TraceKind::Get
                                                   : sim::TraceKind::Put,
                       me_world, target_world, size, issue, ""});
  return costs;
}

void WindowHandle::put_bytes(std::span<const std::byte> src, int target,
                             Bytes byte_offset) {
  account_op(target, src.size(), prof::CallKind::Put);
  auto dst = target_span(target, byte_offset, src.size());
  const std::scoped_lock lock(*info_->locks[static_cast<std::size_t>(target)]);
  if (!src.empty()) std::memcpy(dst.data(), src.data(), src.size());
}

void WindowHandle::get_bytes(std::span<std::byte> dst, int target, Bytes byte_offset) {
  account_op(target, dst.size(), prof::CallKind::Get);
  auto src = target_span(target, byte_offset, dst.size());
  const std::scoped_lock lock(*info_->locks[static_cast<std::size_t>(target)]);
  if (!dst.empty()) std::memcpy(dst.data(), src.data(), dst.size());
}

void WindowHandle::rmw_bytes(
    std::span<const std::byte> src, int target, Bytes byte_offset,
    const std::function<void(std::span<std::byte>, std::span<const std::byte>)>&
        combine) {
  account_op(target, src.size(), prof::CallKind::Accumulate);
  auto dst = target_span(target, byte_offset, src.size());
  const std::scoped_lock lock(*info_->locks[static_cast<std::size_t>(target)]);
  combine(dst, src);
}

void WindowHandle::flush(int target) {
  auto& engine = comm_->engine();
  const ProfiledCall prof_scope(engine, prof::CallKind::Flush);
  engine.clock().advance(kFlushOverhead);
  engine.clock().advance_to(pending_[static_cast<std::size_t>(target)]);
}

void WindowHandle::flush_all() {
  auto& engine = comm_->engine();
  const ProfiledCall prof_scope(engine, prof::CallKind::Flush);
  engine.clock().advance(kFlushOverhead);
  for (Micros deadline : pending_) engine.clock().advance_to(deadline);
}

void WindowHandle::lock(LockKind kind, int target) {
  CBMPI_REQUIRE(target >= 0 && target < comm_->size(), "lock target out of range");
  auto& held = held_[static_cast<std::size_t>(target)];
  CBMPI_REQUIRE(held == 0, "window already locked for target ", target);
  auto& epoch = *info_->epoch_locks[static_cast<std::size_t>(target)];
  if (kind == LockKind::Exclusive)
    epoch.lock();
  else
    epoch.lock_shared();
  held = kind == LockKind::Exclusive ? 2 : 1;
  // Acquiring a remote lock costs about one small one-sided round trip.
  auto& engine = comm_->engine();
  const auto decision =
      engine.job().selector->select(engine.world_rank(), comm_->to_world(target), 8);
  fabric::OneSidedCosts costs;
  switch (decision.channel) {
    case fabric::ChannelKind::Shm:
      costs = engine.job().shm->one_sided_costs(8, decision.same_socket);
      break;
    case fabric::ChannelKind::Cma:
      costs = engine.job().cma->one_sided_costs(8, decision.same_socket);
      break;
    case fabric::ChannelKind::Hca:
      costs = engine.job().hca->one_sided_costs(8, decision.loopback, decision.sriov);
      break;
  }
  engine.clock().advance(costs.latency);
}

void WindowHandle::unlock(int target) {
  auto& held = held_[static_cast<std::size_t>(target)];
  CBMPI_REQUIRE(held != 0, "window not locked for target ", target);
  flush(target);  // unlock completes the epoch's operations at the origin
  auto& epoch = *info_->epoch_locks[static_cast<std::size_t>(target)];
  if (held == 2)
    epoch.unlock();
  else
    epoch.unlock_shared();
  held = 0;
}

void WindowHandle::fetch_rmw_bytes(
    std::span<const std::byte> src, std::span<std::byte> result, int target,
    Bytes byte_offset,
    const std::function<void(std::span<std::byte>, std::span<const std::byte>)>&
        combine) {
  account_op(target, std::max(src.size(), result.size()),
             prof::CallKind::Accumulate);
  auto dst = target_span(target, byte_offset, result.size());
  {
    const std::scoped_lock op_lock(*info_->locks[static_cast<std::size_t>(target)]);
    std::memcpy(result.data(), dst.data(), result.size());
    combine(dst, src);
  }
  // Fetching ops return a value, so they complete synchronously: the origin
  // waits out the full round trip.
  flush(target);
}

void WindowHandle::fence() {
  auto& engine = comm_->engine();
  const ProfiledCall prof_scope(engine, prof::CallKind::Fence);
  engine.clock().advance(kFlushOverhead);
  for (Micros deadline : pending_) engine.clock().advance_to(deadline);
  comm_->raw_barrier();
}

}  // namespace cbmpi::mpi
