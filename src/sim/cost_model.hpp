// Piecewise-linear latency/bandwidth cost models (LogGP flavour).
//
// A transfer of s bytes costs  alpha(segment) + s / beta(segment)  where the
// segment is chosen by message size. Real interconnect microbenchmarks show
// exactly this piecewise behaviour (protocol switches, cache tiers), and the
// paper's channel comparison (Fig. 3b/3c) is reproduced by three calibrated
// instances of this model (SHM copy, CMA copy, HCA wire/loopback).
#pragma once

#include <vector>

#include "common/units.hpp"

namespace cbmpi::sim {

/// One linear segment: for sizes < `upto`, cost = alpha + size/bandwidth.
struct CostSegment {
  Bytes upto;               ///< exclusive upper bound; last segment uses ~0
  Micros alpha;             ///< fixed startup cost in microseconds
  BytesPerMicro bandwidth;  ///< bytes per microsecond
};

class CostModel {
 public:
  CostModel() = default;

  /// Segments must be sorted by `upto` ascending; the last segment's `upto`
  /// must cover any size (use CostModel::unbounded()).
  explicit CostModel(std::vector<CostSegment> segments);

  /// Convenience: a single-segment alpha-beta model.
  static CostModel flat(Micros alpha, BytesPerMicro bandwidth);

  static constexpr Bytes unbounded() { return ~Bytes{0}; }

  /// Cost in microseconds to move `size` bytes.
  Micros cost(Bytes size) const;

  /// Effective bandwidth in B/us for a given size (size / cost).
  double effective_bandwidth(Bytes size) const;

  bool empty() const { return segments_.empty(); }

 private:
  std::vector<CostSegment> segments_;
};

/// Cost of a pure computation phase: work units at a given rate, plus fixed
/// overhead. Used by the application kernels so computation time is identical
/// across deployment scenarios (paper Fig. 3a).
struct ComputeModel {
  double ops_per_micro = 1000.0;  ///< abstract work units retired per us
  Micros fixed = 0.0;

  Micros cost(double ops) const { return fixed + ops / ops_per_micro; }
};

}  // namespace cbmpi::sim
