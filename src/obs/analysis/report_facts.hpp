// Offline view of a run report for tools/cbmpi-analyze: loads any v4/v5
// "cbmpi.run_report" JSON document into a flat, comparable fact table
// (scalar metrics keyed by dotted names), renders a one-report summary and
// a two-report diff ("analysis.blame.registration_us +38.2% vs baseline").
#pragma once

#include <map>
#include <string>

#include "obs/analysis/json_read.hpp"

namespace cbmpi::obs::analysis {

struct ReportFacts {
  bool ok = false;
  std::string error;  ///< set when !ok (unreadable file, bad JSON, schema)
  std::string label;  ///< display name (the file path)

  int version = 0;
  std::string mode;  ///< "single" or "schedule"
  std::string app, deployment, policy;

  /// Every comparable scalar, dotted-name -> value. Includes result times,
  /// profile aggregates, counters, histogram percentiles (computed from the
  /// buckets for v4 reports that predate the p50/p95/p99 fields), reg-cache
  /// stats, and — for v5 reports run with --analyze — the analysis blame
  /// table and wait-state totals.
  std::map<std::string, double> scalars;

  bool has_analysis = false;
};

/// Reads and parses one report file.
ReportFacts load_report_facts(const std::string& path);

/// Parses an already-loaded document (tests).
ReportFacts parse_report_facts(const JsonValue& doc, std::string label);

/// Human summary of one report.
std::string render_report(const ReportFacts& facts);

/// Human diff: relative change of every scalar both reports share.
std::string render_diff(const ReportFacts& fresh, const ReportFacts& baseline);

}  // namespace cbmpi::obs::analysis
