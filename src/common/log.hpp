// Tiny leveled logger. Disabled by default (Warn); benches/examples can turn
// on Info/Debug with --verbose-style flags, and the CBMPI_LOG_LEVEL
// environment variable (debug | info | warn | off) sets the startup level
// without touching any flags. Thread-safe line-at-a-time output.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace cbmpi {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Off = 3 };

namespace logging {
void set_level(LogLevel level);
LogLevel level();
void emit(LogLevel level, const std::string& message);

/// Parses a level name as accepted by CBMPI_LOG_LEVEL (case-insensitive:
/// debug | info | warn | off); nullopt for anything else.
std::optional<LogLevel> parse_level(std::string_view name);

/// Applies CBMPI_LOG_LEVEL from the environment: the parsed level, or
/// `fallback` when the variable is unset or unparsable. Called once
/// automatically before main(); exposed for tests.
LogLevel init_from_env(LogLevel fallback = LogLevel::Warn);
}  // namespace logging

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { logging::emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace cbmpi

#define CBMPI_LOG(level)                                     \
  if (static_cast<int>(::cbmpi::LogLevel::level) <           \
      static_cast<int>(::cbmpi::logging::level())) {         \
  } else                                                     \
    ::cbmpi::detail::LogLine(::cbmpi::LogLevel::level)

#define CBMPI_DEBUG CBMPI_LOG(Debug)
#define CBMPI_INFO CBMPI_LOG(Info)
#define CBMPI_WARN CBMPI_LOG(Warn)
